//! The discrete-event simulation engine.
//!
//! The engine has two execution strategies with byte-identical output:
//!
//! * **sequential** (the default): one loop pops queue entries in
//!   `(time, tie)` order and executes each step inline;
//! * **parallel** ([`Simulation::set_sim_workers`] > 1): a two-phase
//!   stepper. At each discrete time the [`scheduler`] partitions the
//!   ready entries by destination process, the [`pool`] steps distinct
//!   processes concurrently (processes own their state and never share
//!   it, so same-timestamp steps at distinct processes are causally
//!   independent — the ABC model's correctness depends on bounded delay
//!   *ratios*, never on synchronized stepping), and the [`commit`] phase
//!   then replays every side effect (trace append, monitor feed, delay
//!   draw, payload-slab recycling) on the main thread in `(time, tie)`
//!   pop order — exactly the sequential order.
//!
//! Both strategies funnel through the single `commit_step` in [`commit`],
//! so trace event indices, delay-model draws, slab allocation, and the
//! attached monitor's feed order cannot drift between them.

mod commit;
mod pool;
mod scheduler;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use abc_core::check::CheckError;
use abc_core::cycle::Cycle;
use abc_core::monitor::IncrementalChecker;
use abc_core::{ProcessId, Xi};

use crate::delay::DelayModel;
use crate::process::{Context, Process};
use crate::trace::Trace;

use scheduler::{JobBufs, StepEffects};

// Flight-recorder hooks: one span per `run` call (plus per-batch
// partition/step/commit phase spans on the parallel path), relaxed counter
// adds per executed step / dispatched message (no-ops unless the embedding
// process called `abc_obs::enable`).
static OBS_STEPS: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.steps");
static OBS_DISPATCHES: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.dispatches");
static OBS_DROPS: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.drops");
static OBS_BATCHES: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.parallel_steps");

/// Budgets bounding a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Stop after this many computing steps (events).
    pub max_events: usize,
    /// Do not execute events scheduled after this time.
    pub max_time: u64,
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits {
            max_events: 1_000_000,
            max_time: u64::MAX,
        }
    }
}

/// Statistics of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Computing steps executed (including receive-only events at crashed
    /// or absent processes).
    pub events_executed: usize,
    /// Messages handed to the delay model.
    pub messages_sent: usize,
    /// Messages delivered (received).
    pub messages_delivered: usize,
    /// Messages dropped by the delay model.
    pub messages_dropped: usize,
    /// The time of the last executed event.
    pub final_time: u64,
    /// Whether the run ended because the event queue drained (quiescence)
    /// rather than a budget limit.
    pub quiescent: bool,
    /// High-water mark of the payload slab: the maximum number of messages
    /// that were simultaneously in flight over the simulation's lifetime
    /// (slots are recycled through a free list, so memory is bounded by
    /// this, not by the total number of messages ever sent).
    pub payload_slab_peak: usize,
    /// The configured engine worker count
    /// ([`Simulation::set_sim_workers`]; 1 = the sequential loop).
    pub sim_workers: usize,
    /// Same-timestamp batches executed on the worker pool (0 on the
    /// sequential path).
    pub parallel_steps: usize,
    /// The widest batch: the maximum number of distinct processes stepped
    /// concurrently within one discrete time (0 on the sequential path).
    pub max_step_width: usize,
}

impl std::fmt::Display for RunStats {
    /// One parseable line: `events=… sent=… delivered=… dropped=…
    /// final_time=… quiescent=… slab_peak=… sim_workers=…
    /// parallel_steps=… max_step_width=…` (the exact inverse of
    /// `RunStats::from_str`, so stats survive text round trips alongside
    /// serialized traces).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events={} sent={} delivered={} dropped={} final_time={} quiescent={} slab_peak={} \
             sim_workers={} parallel_steps={} max_step_width={}",
            self.events_executed,
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.final_time,
            self.quiescent,
            self.payload_slab_peak,
            self.sim_workers,
            self.parallel_steps,
            self.max_step_width
        )
    }
}

impl std::str::FromStr for RunStats {
    type Err = String;

    /// Parses the `Display` format (key=value pairs, any order). Unknown,
    /// duplicate, and *missing* keys are all rejected — a truncated stats
    /// line must not parse into fabricated zeros.
    fn from_str(s: &str) -> Result<RunStats, String> {
        const KEYS: [&str; 10] = [
            "events",
            "sent",
            "delivered",
            "dropped",
            "final_time",
            "quiescent",
            "slab_peak",
            "sim_workers",
            "parallel_steps",
            "max_step_width",
        ];
        let mut stats = RunStats::default();
        let mut seen = [false; KEYS.len()];
        for part in s.split_whitespace() {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let idx = KEYS
                .iter()
                .position(|k| *k == key)
                .ok_or_else(|| format!("unknown RunStats key {key:?}"))?;
            if seen[idx] {
                return Err(format!("duplicate RunStats key {key:?}"));
            }
            seen[idx] = true;
            let num = |v: &str| v.parse::<u64>().map_err(|e| format!("{key}: {e}"));
            match key {
                "events" => stats.events_executed = num(value)? as usize,
                "sent" => stats.messages_sent = num(value)? as usize,
                "delivered" => stats.messages_delivered = num(value)? as usize,
                "dropped" => stats.messages_dropped = num(value)? as usize,
                "final_time" => stats.final_time = num(value)?,
                "quiescent" => {
                    stats.quiescent = value.parse().map_err(|e| format!("quiescent: {e}"))?;
                }
                "slab_peak" => stats.payload_slab_peak = num(value)? as usize,
                "sim_workers" => stats.sim_workers = num(value)? as usize,
                "parallel_steps" => stats.parallel_steps = num(value)? as usize,
                _ => stats.max_step_width = num(value)? as usize,
            }
        }
        if let Some(missing) = KEYS.iter().zip(&seen).find(|(_, s)| !**s) {
            return Err(format!("missing RunStats key {:?}", missing.0));
        }
        Ok(stats)
    }
}

/// A simulation of `n` message-driven processes over an adversarial network.
///
/// See the crate docs for an end-to-end example, and the module docs for
/// the sequential/parallel execution strategies.
pub struct Simulation<M, D> {
    /// Process slots. `None` only transiently, while a slot's state
    /// machine is checked out to a worker during a parallel batch.
    processes: Vec<Option<Box<dyn Process<M>>>>,
    faulty: Vec<bool>,
    start_times: Vec<u64>,
    delay_model: D,
    queue: BinaryHeap<Reverse<QueueEntry>>,
    payloads: Vec<Option<M>>, // payload per in-flight queue entry
    free_slots: Vec<usize>,   // recycled payload slots (memory O(in-flight))
    trace: Trace,
    seq: usize,
    started: bool,
    monitor_xi: Option<Xi>,
    monitor: Option<IncrementalChecker>,
    /// `Some(interval)`: the attached monitor prunes its settled prefix
    /// every `interval` executed events (bounded-memory monitoring).
    monitor_prune_every: Option<usize>,
    /// Engine worker threads (1 = sequential loop, no pool).
    sim_workers: usize,
    /// The persistent worker pool, created lazily at the first parallel
    /// batch and reused across `run` calls.
    pool: Option<pool::WorkerPool<M>>,
    /// Partition scratch: process index → job index within the current
    /// batch (`usize::MAX` = not yet in the batch).
    job_of: Vec<usize>,
    /// Recycled per-job buffers (inputs/effects/outbox arenas), so
    /// steady-state batches allocate nothing.
    spare: Vec<JobBufs<M>>,
    /// Parallel-path prune correction: the minimum send event referenced
    /// by the current batch's *not yet committed* steps (`usize::MAX`
    /// outside a batch, and always on the sequential path). Those steps
    /// left the queue at partition time, so the watermark scan in
    /// `commit` cannot see them there.
    batch_send_floor: usize,
}

/// Queue entries order by (time, tie_seq).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct QueueEntry {
    time: u64,
    tie: usize,
    kind: EntryKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EntryKind {
    /// Wake-up of a process.
    Init(usize),
    /// Delivery: (receiver, trace message index, payload slot).
    Deliver(usize, usize, usize),
}

impl<M: Clone + Send + 'static, D: DelayModel> Simulation<M, D> {
    /// Creates an empty simulation over the given delay model.
    #[must_use]
    pub fn new(delay_model: D) -> Simulation<M, D> {
        Simulation {
            processes: Vec::new(),
            faulty: Vec::new(),
            start_times: Vec::new(),
            delay_model,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_slots: Vec::new(),
            trace: Trace::default(),
            seq: 0,
            started: false,
            monitor_xi: None,
            monitor: None,
            monitor_prune_every: None,
            sim_workers: 1,
            pool: None,
            job_of: Vec::new(),
            spare: Vec::new(),
            batch_send_floor: usize::MAX,
        }
    }

    /// Adds a correct process, returning its id.
    pub fn add_process<P: Process<M> + 'static>(&mut self, p: P) -> ProcessId {
        self.push_process(Box::new(p), false, 0)
    }

    /// Adds a faulty (Byzantine or crash-faulty) process: its messages are
    /// exempt from the ABC synchrony condition in the extracted graph.
    pub fn add_faulty_process<P: Process<M> + 'static>(&mut self, p: P) -> ProcessId {
        self.push_process(Box::new(p), true, 0)
    }

    /// Adds a correct process whose wake-up message arrives at `start_time`
    /// (staggered booting).
    pub fn add_process_starting_at<P: Process<M> + 'static>(
        &mut self,
        p: P,
        start_time: u64,
    ) -> ProcessId {
        self.push_process(Box::new(p), false, start_time)
    }

    fn push_process(&mut self, p: Box<dyn Process<M>>, faulty: bool, start: u64) -> ProcessId {
        assert!(!self.started, "cannot add processes after the run started");
        let id = ProcessId(self.processes.len());
        self.processes.push(Some(p));
        self.faulty.push(faulty);
        self.start_times.push(start);
        id
    }

    /// Number of processes.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The captured trace (valid after [`Simulation::run`]).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulation, returning the captured trace without a
    /// clone (for generators that only want the trace).
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Mutable access to the delay model (e.g. to reconfigure between
    /// incremental runs).
    pub fn delay_model_mut(&mut self) -> &mut D {
        &mut self.delay_model
    }

    /// Sets the number of engine worker threads for same-timestamp
    /// fan-out (clamped to at least 1; the default 1 runs the classic
    /// sequential loop with no pool).
    ///
    /// With `workers > 1`, every discrete time's ready entries are
    /// partitioned by destination process, stepped concurrently, and
    /// committed in the sequential `(time, tie)` order — traces, stats
    /// (besides [`RunStats::parallel_steps`] /
    /// [`RunStats::max_step_width`] themselves), delay-model draws, and
    /// attached-monitor verdicts are byte-identical to the sequential
    /// engine at any worker count. Workers pay off when many processes
    /// step at the same discrete time and each step does real compute;
    /// narrow or chatty scenarios are usually faster sequentially.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started.
    pub fn set_sim_workers(&mut self, workers: usize) {
        assert!(
            !self.started,
            "cannot change sim workers after the run started"
        );
        self.sim_workers = workers.max(1);
    }

    /// Attaches an online ABC monitor: during [`Simulation::run`] every
    /// executed event is streamed into an
    /// [`abc_core::monitor::IncrementalChecker`] for `Ξ = xi`, with no
    /// per-step `Trace → ExecutionGraph` rebuild. Query the verdict any
    /// time via [`Simulation::monitor`] / [`Simulation::violation`].
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed the monitor's
    /// integer range.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started. A monitored run also panics
    /// (with a configuration-level message) if a message is delivered to a
    /// process before its wake-up — possible only with staggered starts
    /// ([`Simulation::add_process_starting_at`]) and deliveries faster than
    /// the stagger; such executions fall outside Definition 1, and their
    /// traces cannot be converted to execution graphs either.
    pub fn attach_monitor(&mut self, xi: &Xi) -> Result<(), CheckError> {
        assert!(
            !self.started,
            "cannot attach a monitor after the run started"
        );
        // Validate Xi eagerly; the checker itself is built at run start,
        // once the process set is final.
        let _ = IncrementalChecker::new(0, xi)?;
        self.monitor_xi = Some(xi.clone());
        Ok(())
    }

    /// Like [`Simulation::attach_monitor`], but the monitor runs in
    /// bounded-memory mode: its full execution-graph mirror is dropped
    /// ([`IncrementalChecker::enable_pruning`]) and every `prune_every`
    /// executed events the settled prefix is compacted with the engine's
    /// own exact watermark (the oldest send event still referenced by an
    /// in-flight queue entry — future sends always come from events not
    /// yet executed). Memory stays `O(processes + window + in-flight)` no
    /// matter how long the run; verdicts and witness summaries are
    /// byte-identical to an unbounded monitor
    /// ([`Simulation::violation_summary`] replaces the graph-based witness
    /// accessors in this mode).
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] as in [`Simulation::attach_monitor`].
    ///
    /// # Panics
    ///
    /// Panics if the run has already started or `prune_every` is zero.
    pub fn attach_monitor_bounded(
        &mut self,
        xi: &Xi,
        prune_every: usize,
    ) -> Result<(), CheckError> {
        assert!(prune_every > 0, "prune_every must be positive");
        self.attach_monitor(xi)?;
        self.monitor_prune_every = Some(prune_every);
        Ok(())
    }

    /// The summary of the first ABC violation witnessed by the attached
    /// monitor, if any — available in both monitor modes (the `Cycle`
    /// accessor [`Simulation::violation`] works in both modes too, but
    /// summarizing it needs the graph mirror that bounded mode drops).
    #[must_use]
    pub fn violation_summary(&self) -> Option<&abc_core::cycle::WitnessSummary> {
        self.monitor
            .as_ref()
            .and_then(IncrementalChecker::violation_summary)
    }

    /// Work counters and footprint marks of the attached monitor.
    #[must_use]
    pub fn monitor_stats(&self) -> Option<abc_core::monitor::MonitorStats> {
        self.monitor.as_ref().map(IncrementalChecker::stats)
    }

    /// The attached online monitor, if any (populated once the run starts).
    #[must_use]
    pub fn monitor(&self) -> Option<&IncrementalChecker> {
        self.monitor.as_ref()
    }

    /// The first ABC violation witnessed by the attached monitor, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&Cycle> {
        self.monitor
            .as_ref()
            .and_then(IncrementalChecker::violation)
    }

    /// First-run setup: freezes the process set, builds the monitor, and
    /// enqueues every wake-up entry.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.trace.num_processes = self.processes.len();
        self.trace.faulty = self.faulty.clone();
        if let Some(xi) = &self.monitor_xi {
            let mut mon = IncrementalChecker::new(self.processes.len(), xi)
                .expect("Xi validated at attach time");
            if self.monitor_prune_every.is_some() {
                mon.enable_pruning();
            }
            for (p, faulty) in self.faulty.iter().enumerate() {
                if *faulty {
                    mon.mark_faulty(ProcessId(p));
                }
            }
            self.monitor = Some(mon);
        }
        for p in 0..self.processes.len() {
            let entry = QueueEntry {
                time: self.start_times[p],
                tie: self.next_tie(),
                kind: EntryKind::Init(p),
            };
            self.queue.push(Reverse(entry));
        }
    }

    /// Runs until quiescence or a budget limit; can be called repeatedly
    /// with increasing budgets to continue the same execution.
    pub fn run(&mut self, limits: RunLimits) -> RunStats {
        let _span = abc_obs::span("sim.run");
        self.ensure_started();
        let mut stats = RunStats {
            sim_workers: self.sim_workers,
            ..RunStats::default()
        };
        if self.sim_workers > 1 {
            self.run_parallel(limits, &mut stats);
        } else {
            self.run_sequential(limits, &mut stats);
        }
        if self.queue.is_empty() {
            stats.quiescent = true;
        }
        // With the free list, the slab length IS the lifetime peak of
        // concurrently in-flight messages.
        stats.payload_slab_peak = self.payloads.len();
        stats
    }

    /// The classic single-threaded loop: pop, step inline, commit.
    fn run_sequential(&mut self, limits: RunLimits, stats: &mut RunStats) {
        let mut outbox: Vec<(ProcessId, M)> = Vec::new();
        while stats.events_executed < limits.max_events {
            let Some(Reverse(entry)) = self.queue.peek().copied() else {
                stats.quiescent = true;
                break;
            };
            if entry.time > limits.max_time {
                break;
            }
            self.queue.pop();
            let (process, trigger, payload) = match entry.kind {
                EntryKind::Init(p) => (ProcessId(p), None, None),
                EntryKind::Deliver(p, mi, slot) => {
                    let payload = self.payloads[slot].take();
                    self.free_slots.push(slot);
                    (ProcessId(p), Some(mi), payload)
                }
            };
            let num_processes = self.processes.len();
            let behavior = self.processes[process.0]
                .as_mut()
                .expect("process present between batches");
            let was_crashed = behavior.has_crashed();
            let mut label = None;
            let mut distinguished = false;
            outbox.clear();
            {
                let mut ctx = Context {
                    me: process,
                    now: entry.time,
                    num_processes,
                    outbox: &mut outbox,
                    label: &mut label,
                    distinguished: &mut distinguished,
                };
                match (trigger, &payload) {
                    (None, _) => behavior.on_init(&mut ctx),
                    (Some(mi), Some(msg)) => {
                        let from = self.trace.messages[mi].from;
                        behavior.on_message(&mut ctx, from, msg);
                    }
                    (Some(_), None) => unreachable!("payload consumed exactly once"),
                }
            }
            let effects = StepEffects {
                outbox_len: outbox.len(),
                label,
                distinguished,
                was_crashed,
            };
            self.commit_step(stats, entry.time, process, trigger, effects, &mut outbox);
        }
    }

    /// The two-phase parallel stepper: partition each discrete time's
    /// ready entries by destination process, step distinct processes on
    /// the worker pool, then commit every step in `(time, tie)` pop order
    /// (see the module docs for why this is byte-identical to the
    /// sequential loop).
    fn run_parallel(&mut self, limits: RunLimits, stats: &mut RunStats) {
        if self.job_of.len() != self.processes.len() {
            self.job_of = vec![usize::MAX; self.processes.len()];
        }
        let mut merged: Vec<Option<scheduler::StepJob<M>>> = Vec::new();
        let mut outbox: Vec<(ProcessId, M)> = Vec::new();
        let mut floors: Vec<usize> = Vec::new();
        while stats.events_executed < limits.max_events {
            let Some(Reverse(head)) = self.queue.peek().copied() else {
                stats.quiescent = true;
                break;
            };
            if head.time > limits.max_time {
                break;
            }
            let budget = limits.max_events - stats.events_executed;
            let batch = {
                let _span = abc_obs::span("sim.partition");
                self.collect_batch(head.time, budget)
            };
            stats.parallel_steps += 1;
            stats.max_step_width = stats.max_step_width.max(batch.jobs.len());
            OBS_BATCHES.add(1);
            abc_obs::sample("sim.step_width", batch.jobs.len() as u64);
            if self.pool.is_none() {
                self.pool = Some(pool::WorkerPool::new(self.sim_workers));
            }
            {
                let _span = abc_obs::span("sim.step");
                self.pool
                    .as_ref()
                    .expect("pool created above")
                    .run_batch(batch.jobs, &mut merged);
            }
            // Suffix minima over the plan's trigger send events: before
            // committing step i, `batch_send_floor` holds the oldest send
            // event any *later* step of this batch will feed the monitor
            // (those steps left the queue at partition, so the prune
            // watermark can't find them there).
            floors.clear();
            floors.resize(batch.plan.len() + 1, usize::MAX);
            for (i, &(job_idx, step_idx)) in batch.plan.iter().enumerate().rev() {
                let job = merged[job_idx].as_ref().expect("planned job merged back");
                let step_floor = match job.inputs[step_idx].trigger {
                    Some((mi, _)) => self.trace.messages[mi].send_event,
                    None => usize::MAX,
                };
                floors[i] = floors[i + 1].min(step_floor);
            }
            {
                let _span = abc_obs::span("sim.commit");
                for (i, &(job_idx, step_idx)) in batch.plan.iter().enumerate() {
                    self.batch_send_floor = floors[i + 1];
                    let job = merged[job_idx]
                        .as_mut()
                        .expect("every planned job was merged back");
                    let effects = job.effects[step_idx];
                    let input = &mut job.inputs[step_idx];
                    // Recycle the payload slot exactly where the
                    // sequential loop does (at this entry's pop), so the
                    // free-list order — and hence slab growth — matches.
                    if let Some(slot) = input.payload_slot.take() {
                        self.free_slots.push(slot);
                    }
                    let trigger = input.trigger.map(|(mi, _)| mi);
                    debug_assert!(outbox.is_empty());
                    for _ in 0..effects.outbox_len {
                        let send = job
                            .arena
                            .pop()
                            .expect("arena holds every step's sends in reverse");
                        outbox.push(send);
                    }
                    let process = ProcessId(job.process_idx);
                    self.commit_step(stats, batch.time, process, trigger, effects, &mut outbox);
                }
            }
            self.batch_send_floor = usize::MAX;
            for job in merged.drain(..).flatten() {
                self.processes[job.process_idx] = Some(job.behavior);
                self.spare
                    .push(JobBufs::reclaim(job.inputs, job.effects, job.arena));
            }
        }
    }

    /// Read access to a process behavior (e.g. to extract final state).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn process(&self, p: ProcessId) -> &dyn Process<M> {
        self.processes[p.0]
            .as_deref()
            .expect("process present between batches")
    }

    /// Typed access to a process behavior: downcasts to the concrete type
    /// it was added as (e.g. to read an algorithm's decision or report).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn process_as<P: Process<M>>(&self, p: ProcessId) -> Option<&P> {
        let obj: &dyn std::any::Any = self.process(p);
        obj.downcast_ref::<P>()
    }

    fn next_tie(&mut self) -> usize {
        let t = self.seq;
        self.seq += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{BandDelay, FixedDelay};
    use crate::process::{CrashAt, Mute};
    use abc_rational::Ratio;

    /// Echo server: replies to every ping with a pong, up to a budget.
    struct Echo {
        remaining: u32,
    }
    impl Process<u32> for Echo {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me().0 == 0 {
                ctx.send(ProcessId(1), 0);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
                ctx.set_label(u64::from(*m));
            }
        }
    }

    #[test]
    fn ping_pong_terminates_and_orders_time() {
        let mut sim = Simulation::new(FixedDelay::new(10));
        sim.add_process(Echo { remaining: 3 });
        sim.add_process(Echo { remaining: 3 });
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        // init(2) + 6 deliveries before budgets run out at one side.
        assert_eq!(stats.messages_delivered, 7);
        let times: Vec<u64> = sim.trace().events().iter().map(|e| e.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "events execute in chronological order");
        // Labels recorded the message values.
        assert!(sim.trace().events().iter().any(|e| e.label == Some(0)));
    }

    #[test]
    fn budget_limits_are_honoured() {
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        let stats = sim.run(RunLimits {
            max_events: 50,
            max_time: u64::MAX,
        });
        assert_eq!(stats.events_executed, 50);
        assert!(!stats.quiescent);
        // Continue the same run.
        let stats2 = sim.run(RunLimits {
            max_events: 50,
            max_time: u64::MAX,
        });
        assert_eq!(stats2.events_executed, 50);
        assert!(sim.trace().events().len() >= 100);
    }

    #[test]
    fn max_time_stops_before_event() {
        let mut sim = Simulation::new(FixedDelay::new(100));
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        let stats = sim.run(RunLimits {
            max_events: usize::MAX,
            max_time: 250,
        });
        // Events at t=0 (inits), 100, 200 execute; t=300 does not.
        assert!(stats.final_time <= 250);
        assert!(!stats.quiescent);
    }

    #[test]
    fn crashed_processes_still_receive() {
        let mut sim = Simulation::new(FixedDelay::new(5));
        sim.add_process(Echo { remaining: 10 });
        // Crashes after its init step: receives but never replies.
        sim.add_faulty_process(CrashAt::new(Echo { remaining: 10 }, 1));
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        // p0 init sends ping; p1 receives it (event recorded) but no pong.
        assert_eq!(stats.messages_delivered, 1);
        let trace = sim.trace();
        assert_eq!(trace.events_per_process(), vec![1, 2]);
        assert!(trace.is_faulty(ProcessId(1)));
    }

    #[test]
    fn payload_slab_stays_bounded_over_long_two_phase_runs() {
        // Regression: the slab used to grow one slot per message ever sent.
        // A ping-pong run has at most one message in flight per direction,
        // so the slab must stay O(1) no matter how long the run is.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        let limits = RunLimits {
            max_events: 5_000,
            max_time: u64::MAX,
        };
        let stats1 = sim.run(limits);
        let stats2 = sim.run(limits); // second phase of the same execution
        assert!(stats1.messages_sent >= 4_000);
        assert!(stats2.messages_sent >= 4_000);
        assert!(
            stats2.payload_slab_peak <= 4,
            "slab grew to {} slots for ~10k total messages",
            stats2.payload_slab_peak
        );
    }

    /// Broadcasts at init, echoes every message back to its sender (with a
    /// budget): enough concurrent traffic for band delays to reorder
    /// messages and close relevant cycles.
    struct Gossip {
        remaining: u32,
    }
    impl Process<u32> for Gossip {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
            }
        }
    }

    #[test]
    fn attached_monitor_agrees_with_batch_checker() {
        use abc_core::check;
        let run = |xi: &Xi| {
            let mut sim = Simulation::new(BandDelay::new(1, 6, 99));
            sim.add_process(Gossip { remaining: 40 });
            sim.add_process(Gossip { remaining: 40 });
            sim.add_process(Gossip { remaining: 40 });
            sim.attach_monitor(xi).unwrap();
            sim.run(RunLimits::default());
            sim
        };
        // Band [1, 6]: admissible for Xi > 6, possibly violating near 1.
        for xi in [
            Xi::from_fraction(7, 6),
            Xi::from_integer(2),
            Xi::from_integer(7),
        ] {
            let sim = run(&xi);
            let g = sim.trace().to_execution_graph();
            let mon = sim.monitor().expect("monitor attached");
            assert_eq!(mon.graph(), &g, "streamed graph equals batch conversion");
            assert_eq!(
                mon.is_admissible(),
                check::is_admissible(&g, &xi).unwrap(),
                "xi = {xi}"
            );
            if let Some(w) = sim.violation() {
                assert!(w.validate(&g).is_ok());
                assert!(w.classify().violates(&xi));
            }
        }
    }

    #[test]
    fn bounded_monitor_matches_unbounded_and_compacts() {
        // The same seeded run with a plain monitor and a bounded (pruning)
        // monitor: verdicts and witness summaries must be byte-identical,
        // and the bounded run must hold far fewer events live than it
        // executed.
        let run = |xi: &Xi, bounded: bool| {
            let mut sim = Simulation::new(BandDelay::new(1, 6, 99));
            for _ in 0..3 {
                sim.add_process(Gossip { remaining: 400 });
            }
            if bounded {
                sim.attach_monitor_bounded(xi, 8).unwrap();
            } else {
                sim.attach_monitor(xi).unwrap();
            }
            sim.run(RunLimits::default());
            sim
        };
        for xi in [Xi::from_fraction(7, 6), Xi::from_integer(7)] {
            let plain = run(&xi, false);
            let bounded = run(&xi, true);
            assert_eq!(
                plain.trace().events().len(),
                bounded.trace().events().len(),
                "seeded runs are identical"
            );
            let pm = plain.monitor().unwrap();
            let bm = bounded.monitor().unwrap();
            assert_eq!(pm.is_admissible(), bm.is_admissible(), "xi = {xi}");
            assert_eq!(
                plain.violation_summary().map(|s| s.wire().to_string()),
                bounded.violation_summary().map(|s| s.wire().to_string())
            );
            assert_eq!(
                plain.violation().map(|c| format!("{c}")),
                bounded.violation().map(|c| format!("{c}"))
            );
            if bm.is_admissible() {
                let stats = bounded.monitor_stats().unwrap();
                assert!(stats.pruned_events > 0, "long admissible runs compact");
                assert!(
                    bm.live_events() < stats.events / 2,
                    "live window {} vs {} executed",
                    bm.live_events(),
                    stats.events
                );
            }
        }
    }

    #[test]
    fn bounded_monitor_survives_sparse_traffic() {
        // Regression: the prune tick must run only after the executed
        // event's outbox is dispatched — with nothing else in flight, an
        // earlier tick computed a watermark that compacted the very event
        // whose message was about to be sent, and its delivery panicked on
        // the watermark assert.
        let xi = Xi::from_integer(2);
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo { remaining: 40 });
        sim.add_process(Echo { remaining: 40 });
        sim.attach_monitor_bounded(&xi, 3).unwrap();
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        let mon = sim.monitor().expect("monitor attached");
        assert!(mon.is_admissible(), "a fixed-delay ping-pong is admissible");
        assert!(mon.stats().pruned_events > 0, "sparse traffic still prunes");
    }

    #[test]
    fn monitor_detects_fig3_violation_mid_run() {
        // The paper's Fig. 3 shape, live: p0 pings a slow and a fast peer;
        // fast round trips pile up while the slow reply is outstanding, so
        // its arrival closes a relevant cycle with a large ratio.
        use crate::delay::PerLinkBand;
        let mut slow_links = PerLinkBand::new(1, 1, 0);
        slow_links.set_link(ProcessId(0), ProcessId(1), 100, 100);
        slow_links.set_link(ProcessId(1), ProcessId(0), 100, 100);
        struct Fig3 {
            budget: u32,
        }
        impl Process<u32> for Fig3 {
            fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.me().0 == 0 {
                    ctx.send(ProcessId(1), 0);
                    ctx.send(ProcessId(2), 0);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
                if self.budget > 0 {
                    self.budget -= 1;
                    ctx.send(from, m + 1);
                }
            }
        }
        let xi = Xi::from_integer(3);
        let mut sim = Simulation::new(slow_links);
        for _ in 0..3 {
            sim.add_process(Fig3 { budget: 30 });
        }
        sim.attach_monitor(&xi).unwrap();
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        let w = sim.violation().expect("slow reply spans the fast chain");
        let g = sim.trace().to_execution_graph();
        assert!(w.validate(&g).is_ok());
        assert!(w.classify().violates(&xi));
        assert!(w.classify().ratio().unwrap() >= Ratio::from_integer(3));
    }

    #[test]
    fn monitor_exempts_faulty_senders() {
        use abc_core::check;
        let xi = Xi::from_fraction(7, 6);
        let mut sim = Simulation::new(BandDelay::new(1, 6, 5));
        sim.add_process(Gossip { remaining: 30 });
        sim.add_faulty_process(Gossip { remaining: 30 });
        sim.add_process(Gossip { remaining: 30 });
        sim.attach_monitor(&xi).unwrap();
        sim.run(RunLimits::default());
        let g = sim.trace().to_execution_graph();
        let mon = sim.monitor().unwrap();
        assert_eq!(mon.graph(), &g);
        assert_eq!(mon.is_admissible(), check::is_admissible(&g, &xi).unwrap());
    }

    #[test]
    #[should_panic(expected = "before its wake-up")]
    fn monitored_early_delivery_to_staggered_process_panics_clearly() {
        // p0 pings p1 at t=0 with delay 1, but p1 only wakes at t=500:
        // the delivery precedes the wake-up, which Definition 1 forbids.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo { remaining: 1 });
        sim.add_process_starting_at(Echo { remaining: 1 }, 500);
        sim.attach_monitor(&Xi::from_integer(2)).unwrap();
        sim.run(RunLimits::default());
    }

    #[test]
    #[should_panic(expected = "before its wake-up")]
    fn monitored_early_delivery_panics_clearly_on_the_parallel_path_too() {
        // Same configuration error as above, but committed by the parallel
        // engine: the wake-up assert lives in the shared commit point, so
        // the worker count must not change the diagnostic.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.set_sim_workers(4);
        sim.add_process(Echo { remaining: 1 });
        sim.add_process_starting_at(Echo { remaining: 1 }, 500);
        sim.attach_monitor(&Xi::from_integer(2)).unwrap();
        sim.run(RunLimits::default());
    }

    #[test]
    #[should_panic(expected = "after the run started")]
    fn attach_monitor_after_start_panics() {
        let mut sim: Simulation<u32, _> = Simulation::new(FixedDelay::new(1));
        sim.add_process(Mute);
        sim.run(RunLimits::default());
        let _ = sim.attach_monitor(&Xi::from_integer(2));
    }

    #[test]
    #[should_panic(expected = "after the run started")]
    fn set_sim_workers_after_start_panics() {
        let mut sim: Simulation<u32, _> = Simulation::new(FixedDelay::new(1));
        sim.add_process(Mute);
        sim.run(RunLimits::default());
        sim.set_sim_workers(4);
    }

    #[test]
    fn staggered_starts() {
        let mut sim: Simulation<u32, _> = Simulation::new(FixedDelay::new(1));
        sim.add_process(Mute);
        sim.add_process_starting_at(Mute, 500);
        sim.run(RunLimits::default());
        let evs = sim.trace().events();
        assert_eq!(evs[0].time, 0);
        assert_eq!(evs[1].time, 500);
    }

    #[test]
    fn run_stats_display_round_trips() {
        let mut sim = Simulation::new(FixedDelay::new(10));
        sim.add_process(Echo { remaining: 3 });
        sim.add_process(Echo { remaining: 3 });
        let stats = sim.run(RunLimits::default());
        let line = stats.to_string();
        assert!(line.contains("delivered=7"), "{line}");
        assert!(line.contains("sim_workers=1"), "{line}");
        assert!(line.contains("parallel_steps=0"), "{line}");
        assert!(line.contains("max_step_width=0"), "{line}");
        let parsed: RunStats = line.parse().unwrap();
        assert_eq!(parsed, stats);
        assert!("bogus".parse::<RunStats>().is_err());
        assert!("zorp=3".parse::<RunStats>().is_err());
        // Truncated/partial lines must not fail open into zeros.
        assert!("".parse::<RunStats>().is_err());
        assert!("events=500".parse::<RunStats>().is_err());
        // Duplicate keys must be parse errors, not silent last-one-wins —
        // for the first key, a later key, and a duplicate that repeats the
        // same value.
        assert!(format!("{line} events=1").parse::<RunStats>().is_err());
        assert!(format!("{line} slab_peak=9").parse::<RunStats>().is_err());
        assert!(format!("{line} max_step_width=2")
            .parse::<RunStats>()
            .is_err());
        assert!(
            format!("{line} quiescent={}", stats.quiescent)
                .parse::<RunStats>()
                .is_err(),
            "same-value duplicates are still duplicates"
        );
    }

    #[test]
    fn run_stats_parallel_fields_round_trip() {
        // A parallel run's stats line carries the worker and batch-shape
        // fields and survives the same text round trip.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.set_sim_workers(4);
        for _ in 0..3 {
            sim.add_process(Gossip { remaining: 10 });
        }
        let stats = sim.run(RunLimits::default());
        assert_eq!(stats.sim_workers, 4);
        assert!(stats.parallel_steps > 0);
        assert!(stats.max_step_width >= 2, "broadcast batches are wide");
        let line = stats.to_string();
        let parsed: RunStats = line.parse().unwrap();
        assert_eq!(parsed, stats);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(BandDelay::new(1, 9, seed));
            sim.add_process(Echo { remaining: 20 });
            sim.add_process(Echo { remaining: 20 });
            sim.run(RunLimits::default());
            sim.trace()
                .events()
                .iter()
                .map(|e| (e.process, e.time))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    // ---- parallel-path equivalence and degenerate scenarios ------------

    /// Runs the same seeded gossip scenario at the given worker count and
    /// returns every observable artifact: trace text, stats, and (when a
    /// monitor is attached) verdict + margin + witness rendering.
    fn gossip_artifacts(
        workers: usize,
        n: usize,
        seed: u64,
        monitored: Option<(Xi, Option<usize>)>,
        limits: RunLimits,
    ) -> (String, RunStats, Option<(bool, String, String)>) {
        let mut sim = Simulation::new(BandDelay::new(1, 6, seed));
        sim.set_sim_workers(workers);
        for _ in 0..n {
            sim.add_process(Gossip { remaining: 60 });
        }
        if let Some((xi, prune)) = &monitored {
            match prune {
                Some(every) => sim.attach_monitor_bounded(xi, *every).unwrap(),
                None => sim.attach_monitor(xi).unwrap(),
            }
        }
        let stats = sim.run(limits);
        let bounded = matches!(monitored, Some((_, Some(_))));
        let monitor = sim.monitor().map(|mon| {
            // A pruning monitor that stayed admissible has no margin probe
            // (that needs opt-in tracking before the first prune).
            let margin = if bounded && mon.is_admissible() {
                "untracked".to_string()
            } else {
                mon.current_margin()
                    .unwrap()
                    .map(|m| m.ratio.to_string())
                    .unwrap_or_default()
            };
            let witness = sim
                .violation_summary()
                .map(|s| s.wire().to_string())
                .unwrap_or_default();
            (mon.is_admissible(), margin, witness)
        });
        (sim.trace().to_text(), stats, monitor)
    }

    /// Strips the fields that legitimately differ between engines.
    fn core_stats(mut s: RunStats) -> RunStats {
        s.sim_workers = 0;
        s.parallel_steps = 0;
        s.max_step_width = 0;
        s
    }

    #[test]
    fn parallel_traces_and_monitors_match_sequential() {
        for seed in [3, 17] {
            let seq = gossip_artifacts(
                1,
                5,
                seed,
                Some((Xi::from_fraction(3, 2), Some(7))),
                RunLimits::default(),
            );
            for workers in [2, 8] {
                let par = gossip_artifacts(
                    workers,
                    5,
                    seed,
                    Some((Xi::from_fraction(3, 2), Some(7))),
                    RunLimits::default(),
                );
                assert_eq!(seq.0, par.0, "trace bytes at {workers} workers");
                assert_eq!(core_stats(seq.1), core_stats(par.1));
                assert_eq!(seq.2, par.2, "monitor artifacts at {workers} workers");
                assert_eq!(par.1.sim_workers, workers);
                assert!(par.1.parallel_steps > 0);
            }
        }
    }

    #[test]
    fn parallel_run_continues_across_budget_calls() {
        // Incremental re-runs (increasing budgets) must agree with the
        // sequential engine batch-for-batch, including a budget boundary
        // that lands mid-timestamp (all 8 broadcasts arrive at t=2, but
        // the first call's budget cuts that timestamp's batch short).
        let run = |workers: usize| {
            let mut sim = Simulation::new(FixedDelay::new(2));
            sim.set_sim_workers(workers);
            for _ in 0..8 {
                sim.add_process(Gossip { remaining: 12 });
            }
            let limits = RunLimits {
                max_events: 40,
                max_time: u64::MAX,
            };
            let s1 = sim.run(limits);
            let s2 = sim.run(limits);
            (
                sim.trace().to_text(),
                s1.events_executed,
                s2.events_executed,
            )
        };
        let (seq_text, seq_a, seq_b) = run(1);
        let (par_text, par_a, par_b) = run(8);
        assert_eq!(seq_text, par_text);
        assert_eq!((seq_a, seq_b), (par_a, par_b));
        assert_eq!(par_a, 40, "budget cuts the first batch mid-timestamp");
    }

    #[test]
    fn parallel_zero_process_run_quiesces() {
        let mut sim: Simulation<u32, _> = Simulation::new(FixedDelay::new(1));
        sim.set_sim_workers(8);
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        assert_eq!(stats.events_executed, 0);
        assert_eq!(stats.parallel_steps, 0);
        assert_eq!(stats.max_step_width, 0);
    }

    /// Seeds itself three zero-delay self-messages at wake-up and forwards
    /// each until a hop budget drains: every step of the run lands at
    /// t=0, including same-timestamp self-messages created *during* the
    /// timestamp.
    struct SelfLooper {
        hops: u32,
    }
    impl Process<u32> for SelfLooper {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            let me = ctx.me();
            for i in 0..3 {
                ctx.send(me, i);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ProcessId, m: &u32) {
            if self.hops > 0 {
                self.hops -= 1;
                let me = ctx.me();
                ctx.send(me, m + 1);
                ctx.set_label(u64::from(*m));
            }
        }
    }

    #[test]
    fn parallel_single_process_same_timestamp_self_messages() {
        // The degenerate width-1 case: one process, every entry at the
        // same discrete time, each batch seeding the next sub-batch at
        // that time. Must neither deadlock nor reorder.
        let run = |workers: usize| {
            let mut sim = Simulation::new(FixedDelay::new(0));
            sim.set_sim_workers(workers);
            sim.add_process(SelfLooper { hops: 25 });
            let stats = sim.run(RunLimits::default());
            (sim.trace().to_text(), core_stats(stats))
        };
        let (seq_text, seq_stats) = run(1);
        let (par_text, par_stats) = run(8);
        assert_eq!(seq_text, par_text);
        assert_eq!(seq_stats, par_stats);
        assert!(seq_stats.quiescent);
        assert_eq!(seq_stats.final_time, 0, "everything happens at t=0");
    }

    #[test]
    fn parallel_zero_delay_fanout_matches_sequential() {
        // Broadcast storm with zero network delay: the whole run is one
        // discrete time, so intra-timestamp sub-batching (commit-created
        // entries at the same time, higher ties) carries all the load.
        let run = |workers: usize| {
            let mut sim = Simulation::new(FixedDelay::new(0));
            sim.set_sim_workers(workers);
            for _ in 0..6 {
                sim.add_process(Gossip { remaining: 15 });
            }
            let stats = sim.run(RunLimits::default());
            (sim.trace().to_text(), core_stats(stats))
        };
        let (seq_text, seq_stats) = run(1);
        for workers in [2, 8] {
            let (par_text, par_stats) = run(workers);
            assert_eq!(seq_text, par_text, "at {workers} workers");
            assert_eq!(seq_stats, par_stats);
        }
    }

    #[test]
    fn parallel_crash_and_faulty_marks_match_sequential() {
        let run = |workers: usize| {
            let mut sim = Simulation::new(BandDelay::new(1, 4, 23));
            sim.set_sim_workers(workers);
            sim.add_process(Gossip { remaining: 30 });
            sim.add_faulty_process(CrashAt::new(Gossip { remaining: 30 }, 2));
            sim.add_process(Gossip { remaining: 30 });
            sim.run(RunLimits::default());
            sim.trace().to_text()
        };
        assert_eq!(run(1), run(4));
    }

    /// Panics on the third delivery — exercises worker-panic propagation.
    struct Grenade {
        fuse: u32,
    }
    impl Process<u32> for Grenade {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            assert!(self.fuse > 0, "grenade went off");
            self.fuse -= 1;
            ctx.send(from, m + 1);
        }
    }

    #[test]
    #[should_panic(expected = "grenade went off")]
    fn parallel_worker_panic_propagates_with_its_message() {
        // A panicking step must resurface on the caller thread with the
        // original payload (not a poisoned-lock or joined-worker error),
        // and the pool must shut down cleanly afterwards.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.set_sim_workers(4);
        sim.add_process(Grenade { fuse: 2 });
        sim.add_process(Grenade { fuse: 2 });
        sim.run(RunLimits::default());
    }
}
