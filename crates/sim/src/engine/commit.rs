//! The ordered commit point shared by the sequential and parallel engines.
//!
//! Everything order-sensitive lives here and only here: trace event
//! appends, monitor feeding, delay-model draws, payload-slab allocation,
//! and the bounded monitor's prune/watermark computation. Both execution
//! strategies call [`Simulation::commit_step`] once per executed step, in
//! `(time, tie)` pop order — which is why their outputs are byte-identical.

use std::cmp::Reverse;

use abc_core::{EventId, ProcessId};

use crate::delay::{DelayModel, Delivery};
use crate::trace::{TraceEvent, TraceMessage};

use super::scheduler::StepEffects;
use super::{EntryKind, QueueEntry, RunStats, Simulation};
use super::{OBS_DISPATCHES, OBS_DROPS, OBS_STEPS};

impl<M: Clone + Send + 'static, D: DelayModel> Simulation<M, D> {
    /// Commits one executed step: records the trace event, feeds the
    /// monitor, dispatches the step's outbox through the delay model (in
    /// send order), and runs the bounded monitor's prune tick. `outbox` is
    /// drained and left empty for reuse.
    pub(super) fn commit_step(
        &mut self,
        stats: &mut RunStats,
        time: u64,
        process: ProcessId,
        trigger: Option<usize>,
        effects: StepEffects,
        outbox: &mut Vec<(ProcessId, M)>,
    ) {
        // Record the receive event.
        let event_idx = self.trace.events.len();
        if let Some(mi) = trigger {
            self.trace.messages[mi].recv_event = Some(event_idx);
            self.trace.messages[mi].recv_time = Some(time);
            stats.messages_delivered += 1;
        }
        self.trace.events.push(TraceEvent {
            seq: event_idx,
            process,
            time,
            trigger,
            received_only: effects.was_crashed && trigger.is_some(),
            label: effects.label,
            distinguished: effects.distinguished,
        });
        self.feed_monitor_ordered(process, trigger, time);
        stats.events_executed += 1;
        stats.final_time = time;
        OBS_STEPS.add(1);
        self.dispatch_outbox(stats, process, event_idx, time, outbox);
        self.monitor_prune_tick();
    }

    /// Streams the committed event into the attached monitor. Trace events
    /// map to monitor graph events by index (every executed event is a
    /// receive event of the execution graph, in creation order) — the one
    /// and only feed point, so the feed order cannot drift between the
    /// sequential and parallel engines.
    fn feed_monitor_ordered(&mut self, process: ProcessId, trigger: Option<usize>, time: u64) {
        if let Some(mon) = &mut self.monitor {
            match trigger {
                None => {
                    mon.append_init(process);
                }
                Some(mi) => {
                    // The ABC model (and the execution-graph builder)
                    // require a process's wake-up step to precede any
                    // reception; fail with a configuration-level
                    // message instead of a builder assert deep inside.
                    assert!(
                        mon.process_has_events(process),
                        "online monitor: message delivered to {process} at t={time} before \
                         its wake-up (staggered start with an early delivery); such \
                         executions fall outside Definition 1 — start {process} earlier \
                         or delay its incoming messages"
                    );
                    let send_event = EventId(self.trace.messages[mi].send_event);
                    mon.append_send(send_event, process);
                }
            }
        }
    }

    /// Dispatches the committed step's outbox through the delay model, in
    /// send order: draws delays, allocates payload slots from the free
    /// list, and enqueues deliveries with fresh ties (same-timestamp sends
    /// land in a later sub-batch, exactly as in the sequential loop).
    fn dispatch_outbox(
        &mut self,
        stats: &mut RunStats,
        process: ProcessId,
        event_idx: usize,
        time: u64,
        outbox: &mut Vec<(ProcessId, M)>,
    ) {
        for (to, msg) in outbox.drain(..) {
            let seq_no = self.trace.messages.len() as u64;
            stats.messages_sent += 1;
            OBS_DISPATCHES.add(1);
            match self.delay_model.delivery(process, to, time, seq_no) {
                Delivery::Drop => {
                    stats.messages_dropped += 1;
                    OBS_DROPS.add(1);
                    self.trace.messages.push(TraceMessage {
                        from: process,
                        to,
                        send_event: event_idx,
                        recv_event: None,
                        send_time: time,
                        recv_time: None,
                    });
                }
                Delivery::After(d) => {
                    let mi = self.trace.messages.len();
                    self.trace.messages.push(TraceMessage {
                        from: process,
                        to,
                        send_event: event_idx,
                        recv_event: None,
                        send_time: time,
                        recv_time: None,
                    });
                    let slot = match self.free_slots.pop() {
                        Some(s) => {
                            self.payloads[s] = Some(msg);
                            s
                        }
                        None => {
                            self.payloads.push(Some(msg));
                            self.payloads.len() - 1
                        }
                    };
                    let tie = self.next_tie();
                    self.queue.push(Reverse(QueueEntry {
                        time: time.saturating_add(d),
                        tie,
                        kind: EntryKind::Deliver(to.0, mi, slot),
                    }));
                }
            }
        }
    }

    /// The bounded monitor's compaction tick. Runs only after the
    /// committed event's outbox is dispatched: the event's own messages
    /// are in flight by then, so the watermark sees them (pruning before
    /// dispatch could compact the very event they will name as their send
    /// event).
    fn monitor_prune_tick(&mut self) {
        if let Some(every) = self.monitor_prune_every {
            if (self.trace.events.len()) % every == 0 {
                let watermark = self.inflight_watermark().unwrap_or(self.trace.events.len());
                if let Some(mon) = &mut self.monitor {
                    mon.prune_settled(Some(EventId(watermark)));
                }
            }
        }
    }

    /// The engine's exact pruning watermark: the oldest send event any
    /// in-flight entry still references (`None` when nothing is in
    /// flight). Future sends are issued by events that have not executed
    /// yet, so no future `append_send` can name anything older. "In
    /// flight" covers the queue plus — on the parallel path — the current
    /// batch's not-yet-committed steps, which left the queue at partition
    /// time ([`Simulation::batch_send_floor`]).
    fn inflight_watermark(&self) -> Option<usize> {
        let batch_floor = (self.batch_send_floor != usize::MAX).then_some(self.batch_send_floor);
        self.queue
            .iter()
            .filter_map(|Reverse(e)| match e.kind {
                EntryKind::Init(_) => None,
                EntryKind::Deliver(_, mi, _) => Some(self.trace.messages[mi].send_event),
            })
            .chain(batch_floor)
            .min()
    }
}
