//! Deterministic discrete-event simulation of message-driven distributed
//! algorithms — the experimental substrate of the ABC-model reproduction.
//!
//! The paper's system model (Section 2) is implemented literally:
//!
//! * processes are state machines taking **zero-time atomic steps**, each
//!   triggered by the reception of exactly one message (an external wake-up
//!   message starts each process);
//! * a step receives, transitions, and sends zero or more messages;
//! * message delays come from a pluggable [`DelayModel`] (the network
//!   adversary), with delivery guaranteed unless the model drops a message;
//! * up to `f` processes may be faulty: **crash** faults stop processing
//!   (messages are still *received*, matching the paper's receive/process
//!   split) and **Byzantine** faults are simply adversary-written
//!   [`Process`] implementations, marked faulty so their messages are
//!   dropped from the synchrony condition.
//!
//! Every run captures a full space–time [`Trace`], convertible into an
//! [`abc_core::ExecutionGraph`] plus a [`abc_core::timed::TimedGraph`] of
//! real occurrence times — so every simulated execution can be checked
//! against the ABC synchrony condition (Definition 4), the Θ-Model bound,
//! and the paper's theorems. For *online* checking, attach an incremental
//! monitor ([`Simulation::attach_monitor`]): every executed event streams
//! into an [`abc_core::monitor::IncrementalChecker`] and the first
//! violating relevant cycle is latched with a witness, with no per-step
//! graph rebuild ([`Trace::replay_into_monitor`] is the offline analogue).
//! Traces also serialize to a compact line-oriented text format
//! ([`textio`]: [`Trace::to_text`] / [`Trace::from_text`], no serde), so
//! any execution — including every run of an `abc-harness` sweep — can be
//! persisted, replayed, and re-checked offline. Parsing is incremental
//! ([`textio::TraceLineParser`]): files stream through
//! [`Trace::from_reader`] line by line behind a hard per-line length cap,
//! and the parser's streaming mode (O(in-flight) memory, fed by
//! [`Trace::to_stream_text`]'s wire ordering) is what the `abc-service`
//! TCP ingestion server exposes to untrusted clients.
//!
//! # Example: one ping-pong round trip
//!
//! ```
//! use abc_sim::{Simulation, Process, Context, delay::FixedDelay, RunLimits};
//! use abc_core::ProcessId;
//!
//! struct Ping;
//! struct Pong;
//! impl Process<u32> for Ping {
//!     fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
//!         let n = ctx.num_processes();
//!         for p in 0..n {
//!             if p != ctx.me().0 { ctx.send(ProcessId(p), 1); }
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: ProcessId, _m: &u32) {}
//! }
//! impl Process<u32> for Pong {
//!     fn on_init(&mut self, _ctx: &mut Context<'_, u32>) {}
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
//!         if *m == 1 { ctx.send(from, 2); }
//!     }
//! }
//!
//! let mut sim = Simulation::new(FixedDelay::new(5));
//! sim.add_process(Ping);
//! sim.add_process(Pong);
//! let stats = sim.run(RunLimits::default());
//! assert_eq!(stats.messages_delivered, 2);
//! let g = sim.trace().to_execution_graph();
//! assert_eq!(g.num_messages(), 2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binio;
pub mod delay;
mod engine;
mod process;
pub mod textio;
mod trace;

pub use binio::{FrameAssembler, FrameWriter, RecordDecoder, WireRecord, DEFAULT_MAX_FRAME_LEN};
pub use delay::{DelayModel, Delivery};
pub use engine::{RunLimits, RunStats, Simulation};
pub use process::{Context, CrashAt, Mute, Process};
pub use textio::{
    EventFeed, LineAssembler, ParsedLine, TraceLineParser, TraceRecord, TraceTextError,
    DEFAULT_MAX_LINE_LEN,
};
pub use trace::{Trace, TraceEvent, TraceMessage};
