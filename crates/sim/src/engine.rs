//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use abc_core::check::CheckError;
use abc_core::cycle::Cycle;
use abc_core::monitor::IncrementalChecker;
use abc_core::{EventId, ProcessId, Xi};

use crate::delay::{DelayModel, Delivery};
use crate::process::{Context, Process};
use crate::trace::{Trace, TraceEvent, TraceMessage};

// Flight-recorder hooks: one span per `run` call, relaxed counter adds
// per executed step / dispatched message (no-ops unless the embedding
// process called `abc_obs::enable`).
static OBS_STEPS: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.steps");
static OBS_DISPATCHES: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.dispatches");
static OBS_DROPS: abc_obs::CounterDef = abc_obs::CounterDef::new("sim.drops");

/// Budgets bounding a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Stop after this many computing steps (events).
    pub max_events: usize,
    /// Do not execute events scheduled after this time.
    pub max_time: u64,
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits {
            max_events: 1_000_000,
            max_time: u64::MAX,
        }
    }
}

/// Statistics of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Computing steps executed (including receive-only events at crashed
    /// or absent processes).
    pub events_executed: usize,
    /// Messages handed to the delay model.
    pub messages_sent: usize,
    /// Messages delivered (received).
    pub messages_delivered: usize,
    /// Messages dropped by the delay model.
    pub messages_dropped: usize,
    /// The time of the last executed event.
    pub final_time: u64,
    /// Whether the run ended because the event queue drained (quiescence)
    /// rather than a budget limit.
    pub quiescent: bool,
    /// High-water mark of the payload slab: the maximum number of messages
    /// that were simultaneously in flight over the simulation's lifetime
    /// (slots are recycled through a free list, so memory is bounded by
    /// this, not by the total number of messages ever sent).
    pub payload_slab_peak: usize,
}

impl std::fmt::Display for RunStats {
    /// One parseable line: `events=… sent=… delivered=… dropped=…
    /// final_time=… quiescent=… slab_peak=…` (the exact inverse of
    /// `RunStats::from_str`, so stats survive text round trips alongside
    /// serialized traces).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events={} sent={} delivered={} dropped={} final_time={} quiescent={} slab_peak={}",
            self.events_executed,
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.final_time,
            self.quiescent,
            self.payload_slab_peak
        )
    }
}

impl std::str::FromStr for RunStats {
    type Err = String;

    /// Parses the `Display` format (key=value pairs, any order). Unknown,
    /// duplicate, and *missing* keys are all rejected — a truncated stats
    /// line must not parse into fabricated zeros.
    fn from_str(s: &str) -> Result<RunStats, String> {
        const KEYS: [&str; 7] = [
            "events",
            "sent",
            "delivered",
            "dropped",
            "final_time",
            "quiescent",
            "slab_peak",
        ];
        let mut stats = RunStats::default();
        let mut seen = [false; KEYS.len()];
        for part in s.split_whitespace() {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let idx = KEYS
                .iter()
                .position(|k| *k == key)
                .ok_or_else(|| format!("unknown RunStats key {key:?}"))?;
            if seen[idx] {
                return Err(format!("duplicate RunStats key {key:?}"));
            }
            seen[idx] = true;
            let num = |v: &str| v.parse::<u64>().map_err(|e| format!("{key}: {e}"));
            match key {
                "events" => stats.events_executed = num(value)? as usize,
                "sent" => stats.messages_sent = num(value)? as usize,
                "delivered" => stats.messages_delivered = num(value)? as usize,
                "dropped" => stats.messages_dropped = num(value)? as usize,
                "final_time" => stats.final_time = num(value)?,
                "quiescent" => {
                    stats.quiescent = value.parse().map_err(|e| format!("quiescent: {e}"))?;
                }
                _ => stats.payload_slab_peak = num(value)? as usize,
            }
        }
        if let Some(missing) = KEYS.iter().zip(&seen).find(|(_, s)| !**s) {
            return Err(format!("missing RunStats key {:?}", missing.0));
        }
        Ok(stats)
    }
}

/// A simulation of `n` message-driven processes over an adversarial network.
///
/// See the crate docs for an end-to-end example.
pub struct Simulation<M, D> {
    processes: Vec<Box<dyn Process<M>>>,
    faulty: Vec<bool>,
    start_times: Vec<u64>,
    delay_model: D,
    queue: BinaryHeap<Reverse<QueueEntry>>,
    payloads: Vec<Option<M>>, // payload per in-flight queue entry
    free_slots: Vec<usize>,   // recycled payload slots (memory O(in-flight))
    trace: Trace,
    seq: usize,
    started: bool,
    monitor_xi: Option<Xi>,
    monitor: Option<IncrementalChecker>,
    /// `Some(interval)`: the attached monitor prunes its settled prefix
    /// every `interval` executed events (bounded-memory monitoring).
    monitor_prune_every: Option<usize>,
}

/// Queue entries order by (time, tie_seq).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct QueueEntry {
    time: u64,
    tie: usize,
    kind: EntryKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EntryKind {
    /// Wake-up of a process.
    Init(usize),
    /// Delivery: (receiver, trace message index, payload slot).
    Deliver(usize, usize, usize),
}

impl<M: Clone + 'static, D: DelayModel> Simulation<M, D> {
    /// Creates an empty simulation over the given delay model.
    #[must_use]
    pub fn new(delay_model: D) -> Simulation<M, D> {
        Simulation {
            processes: Vec::new(),
            faulty: Vec::new(),
            start_times: Vec::new(),
            delay_model,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_slots: Vec::new(),
            trace: Trace::default(),
            seq: 0,
            started: false,
            monitor_xi: None,
            monitor: None,
            monitor_prune_every: None,
        }
    }

    /// Adds a correct process, returning its id.
    pub fn add_process<P: Process<M> + 'static>(&mut self, p: P) -> ProcessId {
        self.push_process(Box::new(p), false, 0)
    }

    /// Adds a faulty (Byzantine or crash-faulty) process: its messages are
    /// exempt from the ABC synchrony condition in the extracted graph.
    pub fn add_faulty_process<P: Process<M> + 'static>(&mut self, p: P) -> ProcessId {
        self.push_process(Box::new(p), true, 0)
    }

    /// Adds a correct process whose wake-up message arrives at `start_time`
    /// (staggered booting).
    pub fn add_process_starting_at<P: Process<M> + 'static>(
        &mut self,
        p: P,
        start_time: u64,
    ) -> ProcessId {
        self.push_process(Box::new(p), false, start_time)
    }

    fn push_process(&mut self, p: Box<dyn Process<M>>, faulty: bool, start: u64) -> ProcessId {
        assert!(!self.started, "cannot add processes after the run started");
        let id = ProcessId(self.processes.len());
        self.processes.push(p);
        self.faulty.push(faulty);
        self.start_times.push(start);
        id
    }

    /// Number of processes.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The captured trace (valid after [`Simulation::run`]).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulation, returning the captured trace without a
    /// clone (for generators that only want the trace).
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Mutable access to the delay model (e.g. to reconfigure between
    /// incremental runs).
    pub fn delay_model_mut(&mut self) -> &mut D {
        &mut self.delay_model
    }

    /// Attaches an online ABC monitor: during [`Simulation::run`] every
    /// executed event is streamed into an
    /// [`abc_core::monitor::IncrementalChecker`] for `Ξ = xi`, with no
    /// per-step `Trace → ExecutionGraph` rebuild. Query the verdict any
    /// time via [`Simulation::monitor`] / [`Simulation::violation`].
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed the monitor's
    /// integer range.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started. A monitored run also panics
    /// (with a configuration-level message) if a message is delivered to a
    /// process before its wake-up — possible only with staggered starts
    /// ([`Simulation::add_process_starting_at`]) and deliveries faster than
    /// the stagger; such executions fall outside Definition 1, and their
    /// traces cannot be converted to execution graphs either.
    pub fn attach_monitor(&mut self, xi: &Xi) -> Result<(), CheckError> {
        assert!(
            !self.started,
            "cannot attach a monitor after the run started"
        );
        // Validate Xi eagerly; the checker itself is built at run start,
        // once the process set is final.
        let _ = IncrementalChecker::new(0, xi)?;
        self.monitor_xi = Some(xi.clone());
        Ok(())
    }

    /// Like [`Simulation::attach_monitor`], but the monitor runs in
    /// bounded-memory mode: its full execution-graph mirror is dropped
    /// ([`IncrementalChecker::enable_pruning`]) and every `prune_every`
    /// executed events the settled prefix is compacted with the engine's
    /// own exact watermark (the oldest send event still referenced by an
    /// in-flight queue entry — future sends always come from events not
    /// yet executed). Memory stays `O(processes + window + in-flight)` no
    /// matter how long the run; verdicts and witness summaries are
    /// byte-identical to an unbounded monitor
    /// ([`Simulation::violation_summary`] replaces the graph-based witness
    /// accessors in this mode).
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] as in [`Simulation::attach_monitor`].
    ///
    /// # Panics
    ///
    /// Panics if the run has already started or `prune_every` is zero.
    pub fn attach_monitor_bounded(
        &mut self,
        xi: &Xi,
        prune_every: usize,
    ) -> Result<(), CheckError> {
        assert!(prune_every > 0, "prune_every must be positive");
        self.attach_monitor(xi)?;
        self.monitor_prune_every = Some(prune_every);
        Ok(())
    }

    /// The summary of the first ABC violation witnessed by the attached
    /// monitor, if any — available in both monitor modes (the `Cycle`
    /// accessor [`Simulation::violation`] works in both modes too, but
    /// summarizing it needs the graph mirror that bounded mode drops).
    #[must_use]
    pub fn violation_summary(&self) -> Option<&abc_core::cycle::WitnessSummary> {
        self.monitor
            .as_ref()
            .and_then(IncrementalChecker::violation_summary)
    }

    /// Work counters and footprint marks of the attached monitor.
    #[must_use]
    pub fn monitor_stats(&self) -> Option<abc_core::monitor::MonitorStats> {
        self.monitor.as_ref().map(IncrementalChecker::stats)
    }

    /// The engine's exact pruning watermark: the oldest send event any
    /// in-flight queue entry still references (`None` when nothing is in
    /// flight). Future sends are issued by events that have not executed
    /// yet, so no future `append_send` can name anything older.
    fn inflight_watermark(&self) -> Option<usize> {
        self.queue
            .iter()
            .filter_map(|Reverse(e)| match e.kind {
                EntryKind::Init(_) => None,
                EntryKind::Deliver(_, mi, _) => Some(self.trace.messages[mi].send_event),
            })
            .min()
    }

    /// The attached online monitor, if any (populated once the run starts).
    #[must_use]
    pub fn monitor(&self) -> Option<&IncrementalChecker> {
        self.monitor.as_ref()
    }

    /// The first ABC violation witnessed by the attached monitor, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&Cycle> {
        self.monitor
            .as_ref()
            .and_then(IncrementalChecker::violation)
    }

    /// Runs until quiescence or a budget limit; can be called repeatedly
    /// with increasing budgets to continue the same execution.
    pub fn run(&mut self, limits: RunLimits) -> RunStats {
        let _span = abc_obs::span("sim.run");
        if !self.started {
            self.started = true;
            self.trace.num_processes = self.processes.len();
            self.trace.faulty = self.faulty.clone();
            if let Some(xi) = &self.monitor_xi {
                let mut mon = IncrementalChecker::new(self.processes.len(), xi)
                    .expect("Xi validated at attach time");
                if self.monitor_prune_every.is_some() {
                    mon.enable_pruning();
                }
                for (p, faulty) in self.faulty.iter().enumerate() {
                    if *faulty {
                        mon.mark_faulty(ProcessId(p));
                    }
                }
                self.monitor = Some(mon);
            }
            for p in 0..self.processes.len() {
                let entry = QueueEntry {
                    time: self.start_times[p],
                    tie: self.next_tie(),
                    kind: EntryKind::Init(p),
                };
                self.queue.push(Reverse(entry));
            }
        }
        let mut stats = RunStats::default();
        let mut outbox: Vec<(ProcessId, M)> = Vec::new();
        while stats.events_executed < limits.max_events {
            let Some(Reverse(entry)) = self.queue.peek().copied() else {
                stats.quiescent = true;
                break;
            };
            if entry.time > limits.max_time {
                break;
            }
            self.queue.pop();
            let (process, trigger, payload) = match entry.kind {
                EntryKind::Init(p) => (ProcessId(p), None, None),
                EntryKind::Deliver(p, mi, slot) => {
                    let payload = self.payloads[slot].take();
                    self.free_slots.push(slot);
                    (ProcessId(p), Some(mi), payload)
                }
            };
            // Record the receive event.
            let event_idx = self.trace.events.len();
            let was_crashed = self.processes[process.0].has_crashed();
            let mut label = None;
            let mut distinguished = false;
            outbox.clear();
            {
                let mut ctx = Context {
                    me: process,
                    now: entry.time,
                    num_processes: self.processes.len(),
                    outbox: &mut outbox,
                    label: &mut label,
                    distinguished: &mut distinguished,
                };
                match (trigger, &payload) {
                    (None, _) => self.processes[process.0].on_init(&mut ctx),
                    (Some(mi), Some(msg)) => {
                        let from = self.trace.messages[mi].from;
                        self.processes[process.0].on_message(&mut ctx, from, msg);
                    }
                    (Some(_), None) => unreachable!("payload consumed exactly once"),
                }
            }
            if let Some(mi) = trigger {
                self.trace.messages[mi].recv_event = Some(event_idx);
                self.trace.messages[mi].recv_time = Some(entry.time);
                stats.messages_delivered += 1;
            }
            self.trace.events.push(TraceEvent {
                seq: event_idx,
                process,
                time: entry.time,
                trigger,
                received_only: was_crashed && trigger.is_some(),
                label,
                distinguished,
            });
            // Stream the event into the attached monitor. Trace events map
            // to monitor graph events by index (every executed event is a
            // receive event of the execution graph, in creation order).
            if let Some(mon) = &mut self.monitor {
                match trigger {
                    None => {
                        mon.append_init(process);
                    }
                    Some(mi) => {
                        // The ABC model (and the execution-graph builder)
                        // require a process's wake-up step to precede any
                        // reception; fail with a configuration-level
                        // message instead of a builder assert deep inside.
                        assert!(
                            mon.process_has_events(process),
                            "online monitor: message delivered to {process} at t={} before \
                             its wake-up (staggered start with an early delivery); such \
                             executions fall outside Definition 1 — start {process} earlier \
                             or delay its incoming messages",
                            entry.time
                        );
                        let send_event = EventId(self.trace.messages[mi].send_event);
                        mon.append_send(send_event, process);
                    }
                }
            }
            stats.events_executed += 1;
            stats.final_time = entry.time;
            OBS_STEPS.add(1);
            // Dispatch the outbox through the delay model.
            for (to, msg) in outbox.drain(..) {
                let seq_no = self.trace.messages.len() as u64;
                stats.messages_sent += 1;
                OBS_DISPATCHES.add(1);
                match self.delay_model.delivery(process, to, entry.time, seq_no) {
                    Delivery::Drop => {
                        stats.messages_dropped += 1;
                        OBS_DROPS.add(1);
                        self.trace.messages.push(TraceMessage {
                            from: process,
                            to,
                            send_event: event_idx,
                            recv_event: None,
                            send_time: entry.time,
                            recv_time: None,
                        });
                    }
                    Delivery::After(d) => {
                        let mi = self.trace.messages.len();
                        self.trace.messages.push(TraceMessage {
                            from: process,
                            to,
                            send_event: event_idx,
                            recv_event: None,
                            send_time: entry.time,
                            recv_time: None,
                        });
                        let slot = match self.free_slots.pop() {
                            Some(s) => {
                                self.payloads[s] = Some(msg);
                                s
                            }
                            None => {
                                self.payloads.push(Some(msg));
                                self.payloads.len() - 1
                            }
                        };
                        let tie = self.next_tie();
                        self.queue.push(Reverse(QueueEntry {
                            time: entry.time.saturating_add(d),
                            tie,
                            kind: EntryKind::Deliver(to.0, mi, slot),
                        }));
                    }
                }
            }
            // Prune only after the outbox is dispatched: the executed
            // event's own messages are in flight by now, so the watermark
            // sees them (pruning before dispatch could compact the very
            // event they will name as their send event).
            if let Some(every) = self.monitor_prune_every {
                if (self.trace.events.len()) % every == 0 {
                    let watermark = self.inflight_watermark().unwrap_or(self.trace.events.len());
                    if let Some(mon) = &mut self.monitor {
                        mon.prune_settled(Some(EventId(watermark)));
                    }
                }
            }
        }
        if self.queue.is_empty() {
            stats.quiescent = true;
        }
        // With the free list, the slab length IS the lifetime peak of
        // concurrently in-flight messages.
        stats.payload_slab_peak = self.payloads.len();
        stats
    }

    /// Read access to a process behavior (e.g. to extract final state).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn process(&self, p: ProcessId) -> &dyn Process<M> {
        self.processes[p.0].as_ref()
    }

    /// Typed access to a process behavior: downcasts to the concrete type
    /// it was added as (e.g. to read an algorithm's decision or report).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn process_as<P: Process<M>>(&self, p: ProcessId) -> Option<&P> {
        let obj: &dyn std::any::Any = self.processes[p.0].as_ref();
        obj.downcast_ref::<P>()
    }

    fn next_tie(&mut self) -> usize {
        let t = self.seq;
        self.seq += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{BandDelay, FixedDelay};
    use crate::process::{CrashAt, Mute};
    use abc_rational::Ratio;

    /// Echo server: replies to every ping with a pong, up to a budget.
    struct Echo {
        remaining: u32,
    }
    impl Process<u32> for Echo {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me().0 == 0 {
                ctx.send(ProcessId(1), 0);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
                ctx.set_label(u64::from(*m));
            }
        }
    }

    #[test]
    fn ping_pong_terminates_and_orders_time() {
        let mut sim = Simulation::new(FixedDelay::new(10));
        sim.add_process(Echo { remaining: 3 });
        sim.add_process(Echo { remaining: 3 });
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        // init(2) + 6 deliveries before budgets run out at one side.
        assert_eq!(stats.messages_delivered, 7);
        let times: Vec<u64> = sim.trace().events().iter().map(|e| e.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "events execute in chronological order");
        // Labels recorded the message values.
        assert!(sim.trace().events().iter().any(|e| e.label == Some(0)));
    }

    #[test]
    fn budget_limits_are_honoured() {
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        let stats = sim.run(RunLimits {
            max_events: 50,
            max_time: u64::MAX,
        });
        assert_eq!(stats.events_executed, 50);
        assert!(!stats.quiescent);
        // Continue the same run.
        let stats2 = sim.run(RunLimits {
            max_events: 50,
            max_time: u64::MAX,
        });
        assert_eq!(stats2.events_executed, 50);
        assert!(sim.trace().events().len() >= 100);
    }

    #[test]
    fn max_time_stops_before_event() {
        let mut sim = Simulation::new(FixedDelay::new(100));
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        let stats = sim.run(RunLimits {
            max_events: usize::MAX,
            max_time: 250,
        });
        // Events at t=0 (inits), 100, 200 execute; t=300 does not.
        assert!(stats.final_time <= 250);
        assert!(!stats.quiescent);
    }

    #[test]
    fn crashed_processes_still_receive() {
        let mut sim = Simulation::new(FixedDelay::new(5));
        sim.add_process(Echo { remaining: 10 });
        // Crashes after its init step: receives but never replies.
        sim.add_faulty_process(CrashAt::new(Echo { remaining: 10 }, 1));
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        // p0 init sends ping; p1 receives it (event recorded) but no pong.
        assert_eq!(stats.messages_delivered, 1);
        let trace = sim.trace();
        assert_eq!(trace.events_per_process(), vec![1, 2]);
        assert!(trace.is_faulty(ProcessId(1)));
    }

    #[test]
    fn payload_slab_stays_bounded_over_long_two_phase_runs() {
        // Regression: the slab used to grow one slot per message ever sent.
        // A ping-pong run has at most one message in flight per direction,
        // so the slab must stay O(1) no matter how long the run is.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        sim.add_process(Echo {
            remaining: u32::MAX,
        });
        let limits = RunLimits {
            max_events: 5_000,
            max_time: u64::MAX,
        };
        let stats1 = sim.run(limits);
        let stats2 = sim.run(limits); // second phase of the same execution
        assert!(stats1.messages_sent >= 4_000);
        assert!(stats2.messages_sent >= 4_000);
        assert!(
            stats2.payload_slab_peak <= 4,
            "slab grew to {} slots for ~10k total messages",
            stats2.payload_slab_peak
        );
    }

    /// Broadcasts at init, echoes every message back to its sender (with a
    /// budget): enough concurrent traffic for band delays to reorder
    /// messages and close relevant cycles.
    struct Gossip {
        remaining: u32,
    }
    impl Process<u32> for Gossip {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
            }
        }
    }

    #[test]
    fn attached_monitor_agrees_with_batch_checker() {
        use abc_core::check;
        let run = |xi: &Xi| {
            let mut sim = Simulation::new(BandDelay::new(1, 6, 99));
            sim.add_process(Gossip { remaining: 40 });
            sim.add_process(Gossip { remaining: 40 });
            sim.add_process(Gossip { remaining: 40 });
            sim.attach_monitor(xi).unwrap();
            sim.run(RunLimits::default());
            sim
        };
        // Band [1, 6]: admissible for Xi > 6, possibly violating near 1.
        for xi in [
            Xi::from_fraction(7, 6),
            Xi::from_integer(2),
            Xi::from_integer(7),
        ] {
            let sim = run(&xi);
            let g = sim.trace().to_execution_graph();
            let mon = sim.monitor().expect("monitor attached");
            assert_eq!(mon.graph(), &g, "streamed graph equals batch conversion");
            assert_eq!(
                mon.is_admissible(),
                check::is_admissible(&g, &xi).unwrap(),
                "xi = {xi}"
            );
            if let Some(w) = sim.violation() {
                assert!(w.validate(&g).is_ok());
                assert!(w.classify().violates(&xi));
            }
        }
    }

    #[test]
    fn bounded_monitor_matches_unbounded_and_compacts() {
        // The same seeded run with a plain monitor and a bounded (pruning)
        // monitor: verdicts and witness summaries must be byte-identical,
        // and the bounded run must hold far fewer events live than it
        // executed.
        let run = |xi: &Xi, bounded: bool| {
            let mut sim = Simulation::new(BandDelay::new(1, 6, 99));
            for _ in 0..3 {
                sim.add_process(Gossip { remaining: 400 });
            }
            if bounded {
                sim.attach_monitor_bounded(xi, 8).unwrap();
            } else {
                sim.attach_monitor(xi).unwrap();
            }
            sim.run(RunLimits::default());
            sim
        };
        for xi in [Xi::from_fraction(7, 6), Xi::from_integer(7)] {
            let plain = run(&xi, false);
            let bounded = run(&xi, true);
            assert_eq!(
                plain.trace().events().len(),
                bounded.trace().events().len(),
                "seeded runs are identical"
            );
            let pm = plain.monitor().unwrap();
            let bm = bounded.monitor().unwrap();
            assert_eq!(pm.is_admissible(), bm.is_admissible(), "xi = {xi}");
            assert_eq!(
                plain.violation_summary().map(|s| s.wire().to_string()),
                bounded.violation_summary().map(|s| s.wire().to_string())
            );
            assert_eq!(
                plain.violation().map(|c| format!("{c}")),
                bounded.violation().map(|c| format!("{c}"))
            );
            if bm.is_admissible() {
                let stats = bounded.monitor_stats().unwrap();
                assert!(stats.pruned_events > 0, "long admissible runs compact");
                assert!(
                    bm.live_events() < stats.events / 2,
                    "live window {} vs {} executed",
                    bm.live_events(),
                    stats.events
                );
            }
        }
    }

    #[test]
    fn bounded_monitor_survives_sparse_traffic() {
        // Regression: the prune tick must run only after the executed
        // event's outbox is dispatched — with nothing else in flight, an
        // earlier tick computed a watermark that compacted the very event
        // whose message was about to be sent, and its delivery panicked on
        // the watermark assert.
        let xi = Xi::from_integer(2);
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo { remaining: 40 });
        sim.add_process(Echo { remaining: 40 });
        sim.attach_monitor_bounded(&xi, 3).unwrap();
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        let mon = sim.monitor().expect("monitor attached");
        assert!(mon.is_admissible(), "a fixed-delay ping-pong is admissible");
        assert!(mon.stats().pruned_events > 0, "sparse traffic still prunes");
    }

    #[test]
    fn monitor_detects_fig3_violation_mid_run() {
        // The paper's Fig. 3 shape, live: p0 pings a slow and a fast peer;
        // fast round trips pile up while the slow reply is outstanding, so
        // its arrival closes a relevant cycle with a large ratio.
        use crate::delay::PerLinkBand;
        let mut slow_links = PerLinkBand::new(1, 1, 0);
        slow_links.set_link(ProcessId(0), ProcessId(1), 100, 100);
        slow_links.set_link(ProcessId(1), ProcessId(0), 100, 100);
        struct Fig3 {
            budget: u32,
        }
        impl Process<u32> for Fig3 {
            fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.me().0 == 0 {
                    ctx.send(ProcessId(1), 0);
                    ctx.send(ProcessId(2), 0);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
                if self.budget > 0 {
                    self.budget -= 1;
                    ctx.send(from, m + 1);
                }
            }
        }
        let xi = Xi::from_integer(3);
        let mut sim = Simulation::new(slow_links);
        for _ in 0..3 {
            sim.add_process(Fig3 { budget: 30 });
        }
        sim.attach_monitor(&xi).unwrap();
        let stats = sim.run(RunLimits::default());
        assert!(stats.quiescent);
        let w = sim.violation().expect("slow reply spans the fast chain");
        let g = sim.trace().to_execution_graph();
        assert!(w.validate(&g).is_ok());
        assert!(w.classify().violates(&xi));
        assert!(w.classify().ratio().unwrap() >= Ratio::from_integer(3));
    }

    #[test]
    fn monitor_exempts_faulty_senders() {
        use abc_core::check;
        let xi = Xi::from_fraction(7, 6);
        let mut sim = Simulation::new(BandDelay::new(1, 6, 5));
        sim.add_process(Gossip { remaining: 30 });
        sim.add_faulty_process(Gossip { remaining: 30 });
        sim.add_process(Gossip { remaining: 30 });
        sim.attach_monitor(&xi).unwrap();
        sim.run(RunLimits::default());
        let g = sim.trace().to_execution_graph();
        let mon = sim.monitor().unwrap();
        assert_eq!(mon.graph(), &g);
        assert_eq!(mon.is_admissible(), check::is_admissible(&g, &xi).unwrap());
    }

    #[test]
    #[should_panic(expected = "before its wake-up")]
    fn monitored_early_delivery_to_staggered_process_panics_clearly() {
        // p0 pings p1 at t=0 with delay 1, but p1 only wakes at t=500:
        // the delivery precedes the wake-up, which Definition 1 forbids.
        let mut sim = Simulation::new(FixedDelay::new(1));
        sim.add_process(Echo { remaining: 1 });
        sim.add_process_starting_at(Echo { remaining: 1 }, 500);
        sim.attach_monitor(&Xi::from_integer(2)).unwrap();
        sim.run(RunLimits::default());
    }

    #[test]
    #[should_panic(expected = "after the run started")]
    fn attach_monitor_after_start_panics() {
        let mut sim: Simulation<u32, _> = Simulation::new(FixedDelay::new(1));
        sim.add_process(Mute);
        sim.run(RunLimits::default());
        let _ = sim.attach_monitor(&Xi::from_integer(2));
    }

    #[test]
    fn staggered_starts() {
        let mut sim: Simulation<u32, _> = Simulation::new(FixedDelay::new(1));
        sim.add_process(Mute);
        sim.add_process_starting_at(Mute, 500);
        sim.run(RunLimits::default());
        let evs = sim.trace().events();
        assert_eq!(evs[0].time, 0);
        assert_eq!(evs[1].time, 500);
    }

    #[test]
    fn run_stats_display_round_trips() {
        let mut sim = Simulation::new(FixedDelay::new(10));
        sim.add_process(Echo { remaining: 3 });
        sim.add_process(Echo { remaining: 3 });
        let stats = sim.run(RunLimits::default());
        let line = stats.to_string();
        assert!(line.contains("delivered=7"), "{line}");
        let parsed: RunStats = line.parse().unwrap();
        assert_eq!(parsed, stats);
        assert!("bogus".parse::<RunStats>().is_err());
        assert!("zorp=3".parse::<RunStats>().is_err());
        // Truncated/partial lines must not fail open into zeros.
        assert!("".parse::<RunStats>().is_err());
        assert!("events=500".parse::<RunStats>().is_err());
        // Duplicate keys must be parse errors, not silent last-one-wins —
        // for the first key, a later key, and a duplicate that repeats the
        // same value.
        assert!(format!("{line} events=1").parse::<RunStats>().is_err());
        assert!(format!("{line} slab_peak=9").parse::<RunStats>().is_err());
        assert!(
            format!("{line} quiescent={}", stats.quiescent)
                .parse::<RunStats>()
                .is_err(),
            "same-value duplicates are still duplicates"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(BandDelay::new(1, 9, seed));
            sim.add_process(Echo { remaining: 20 });
            sim.add_process(Echo { remaining: 20 });
            sim.run(RunLimits::default());
            sim.trace()
                .events()
                .iter()
                .map(|e| (e.process, e.time))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
