//! Binary wire framing (`abc-trace v2`) for traces — the compact sibling
//! of the text format in [`crate::textio`].
//!
//! The text grammar spends most of its bytes on ASCII decimal and
//! whitespace, and most of its CPU on `split_whitespace` + `parse`. This
//! module frames the *same record language* ([`TraceRecord`]) as
//! length-prefixed binary frames of varint-packed records, decoded
//! straight into [`TraceLineParser::feed_record`] — so the binary framing
//! accepts exactly the documents the text framing accepts, by
//! construction rather than by test.
//!
//! # Frame layout
//!
//! ```text
//! stream := frame*
//! frame  := len:varint payload[len]        -- len >= 1, len <= frame cap
//! payload:= record+
//! record := tag:u8 body
//! ```
//!
//! All integers are canonical LEB128 varints: little-endian base-128, the
//! high bit of each byte marking continuation, at most 10 bytes, and the
//! shortest encoding required (a non-final `0x80`-padded tail is
//! rejected). Record tags and bodies:
//!
//! | tag    | record     | body                                                      |
//! |--------|------------|-----------------------------------------------------------|
//! | `0x01` | processes  | `count`                                                   |
//! | `0x02` | faulty     | `k` then `k` process indices                              |
//! | `0x03` | events     | declared event count                                      |
//! | `0x04` | messages   | declared message count                                    |
//! | `0x05` | event      | `flags:u8 process dt [trigger] [label]`                   |
//! | `0x06` | message    | `flags:u8 from to send_event send_time [recv_event recv_dt]` |
//! | `0x07` | end        | (empty)                                                   |
//! | `0x08` | xi         | `len` then `len` UTF-8 bytes of the `Ξ` spec (`"P/Q"`)    |
//!
//! Event flags: bit 0 = has trigger (`trigger` field present), bit 1 =
//! received-only, bit 2 = has label (`label` field present), bit 3 =
//! distinguished; the remaining bits are reserved and must be zero.
//! Event times are delta-coded: `dt` is the difference from the previous
//! event's time (times are non-decreasing, so deltas are small), reset to
//! an absolute time by each `processes` record. Message flags: bit 0 =
//! delivered (`recv_event`/`recv_dt` present), the rest reserved;
//! `recv_dt` is relative to `send_time`. Event sequence numbers are
//! implicit (records arrive in `seq` order), message indices are implicit
//! (position among message records), exactly as the text format's
//! positional `m`-line indices.
//!
//! # Worked example
//!
//! A one-process document with a single wake-up event at time 0 encodes
//! as one 10-byte frame:
//!
//! ```text
//! 09              frame length 9
//!   01 01         processes 1
//!   02 00         faulty (k = 0)
//!   05 00 00 00   event: flags 0 (wake-up), process 0, dt 0
//!   07            end
//! ```
//!
//! ```
//! use abc_sim::Trace;
//! let bytes = [0x09, 0x01, 0x01, 0x02, 0x00, 0x05, 0x00, 0x00, 0x00, 0x07];
//! let trace = Trace::from_binary(&bytes).unwrap();
//! assert_eq!(trace.num_processes(), 1);
//! assert_eq!(trace.events().len(), 1);
//! ```
//!
//! # Safety against adversarial input
//!
//! [`FrameAssembler`] enforces a hard frame-length cap from the length
//! prefix alone (an attacker claiming a 4 GB frame is rejected after at
//! most 10 buffered bytes), and [`RecordDecoder`] bounds every
//! count-prefixed allocation by the bytes actually present in the frame.
//! Malformed input of any shape — truncated frames, overlong varints,
//! reserved flag bits, unknown tags, mid-field frame ends — yields an
//! error, never a panic, and everything semantic (index ranges, time
//! monotonicity, cross references) is rejected by the shared
//! [`TraceLineParser`] core with the same rules as text.

use crate::textio::{EventRecord, MessageRecord, TraceLineParser, TraceRecord, TraceTextError};
use crate::trace::Trace;

/// Default cap on a single frame's payload length, enforced by
/// [`FrameAssembler`]. Generously above the encoder's
/// [`DEFAULT_FRAME_TARGET`]; a longer frame is an attack or corruption.
pub const DEFAULT_MAX_FRAME_LEN: usize = 256 * 1024;

/// Payload size at which the encoder seals a frame and starts the next
/// one. Small enough to keep the receiver's per-frame copy cache-friendly,
/// large enough to amortize the length prefix and per-frame ack to noise.
pub const DEFAULT_FRAME_TARGET: usize = 32 * 1024;

/// A varint is at most 10 bytes (`ceil(64 / 7)`).
const MAX_VARINT_LEN: usize = 10;

const TAG_PROCESSES: u8 = 0x01;
const TAG_FAULTY: u8 = 0x02;
const TAG_DECL_EVENTS: u8 = 0x03;
const TAG_DECL_MESSAGES: u8 = 0x04;
const TAG_EVENT: u8 = 0x05;
const TAG_MESSAGE: u8 = 0x06;
const TAG_END: u8 = 0x07;
const TAG_XI: u8 = 0x08;
const TAG_MARGIN: u8 = 0x09;

const EV_TRIGGER: u8 = 1 << 0;
const EV_RECEIVED_ONLY: u8 = 1 << 1;
const EV_LABEL: u8 = 1 << 2;
const EV_DISTINGUISHED: u8 = 1 << 3;
const EV_RESERVED: u8 = !(EV_TRIGGER | EV_RECEIVED_ONLY | EV_LABEL | EV_DISTINGUISHED);

const MSG_DELIVERED: u8 = 1 << 0;
const MSG_RESERVED: u8 = !MSG_DELIVERED;

/// Appends `v` as a canonical LEB128 varint.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a canonical LEB128 varint from the front of `buf`.
///
/// Returns `Ok(Some((value, encoded_len)))` on success, `Ok(None)` if
/// `buf` ends before the varint does (feed more bytes), and `Err` on a
/// non-canonical (overlong) or overflowing encoding.
fn decode_varint(buf: &[u8]) -> Result<Option<(u64, usize)>, String> {
    let mut v: u64 = 0;
    for (i, &b) in buf.iter().enumerate().take(MAX_VARINT_LEN) {
        if i == MAX_VARINT_LEN - 1 && b > 0x01 {
            return Err("varint overflows 64 bits".to_string());
        }
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            if i > 0 && b == 0 {
                return Err("overlong varint encoding".to_string());
            }
            return Ok(Some((v, i + 1)));
        }
    }
    if buf.len() >= MAX_VARINT_LEN {
        return Err(format!("varint runs past {MAX_VARINT_LEN} bytes"));
    }
    Ok(None)
}

/// One decoded wire record: the binary counterpart of a text line.
///
/// `Event`/`Message` carry absolute times (the decoder resolves the
/// on-wire deltas) and convert losslessly into [`TraceRecord`]s via
/// [`WireRecord::to_trace_record`]; `Xi` and `Margin` are session-level
/// records the `abc-service` protocol consumes directly and have no
/// [`TraceRecord`] counterpart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRecord {
    /// `processes <n>`.
    Processes(usize),
    /// `faulty <p>…`.
    Faulty(Vec<usize>),
    /// Declared event count.
    DeclaredEvents(usize),
    /// Declared message count.
    DeclaredMessages(usize),
    /// One event, with its time already resolved to an absolute value.
    Event(EventRecord),
    /// One message, with its receive time already resolved.
    Message(MessageRecord),
    /// End of document.
    End,
    /// A `Ξ` bound specification (the text protocol's `xi <P/Q>` line).
    Xi(String),
    /// An on-demand synchrony-margin request (the text protocol's
    /// `margin` line) — a session-level record, accepted mid-document and
    /// between documents, with no [`TraceRecord`] counterpart.
    Margin,
}

impl WireRecord {
    /// The document-grammar view of this record, or `None` for the
    /// session-level [`WireRecord::Xi`] / [`WireRecord::Margin`].
    #[must_use]
    pub fn to_trace_record(&self) -> Option<TraceRecord<'_>> {
        Some(match self {
            WireRecord::Processes(n) => TraceRecord::Processes(*n),
            WireRecord::Faulty(v) => TraceRecord::Faulty(v),
            WireRecord::DeclaredEvents(n) => TraceRecord::DeclaredEvents(*n),
            WireRecord::DeclaredMessages(n) => TraceRecord::DeclaredMessages(*n),
            WireRecord::Event(e) => TraceRecord::Event(*e),
            WireRecord::Message(m) => TraceRecord::Message(*m),
            WireRecord::End => TraceRecord::End,
            WireRecord::Xi(_) | WireRecord::Margin => return None,
        })
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or("truncated record (frame ends mid-record)")?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        match decode_varint(self.buf.get(self.pos..).unwrap_or(&[]))? {
            Some((v, n)) => {
                self.pos += n;
                Ok(v)
            }
            None => Err("truncated record (frame ends mid-varint)".to_string()),
        }
    }

    fn index(&mut self) -> Result<usize, String> {
        usize::try_from(self.varint()?).map_err(|_| "index exceeds the platform range".to_string())
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let s = self
            .pos
            .checked_add(len)
            .and_then(|end| self.buf.get(self.pos..end))
            .ok_or("truncated record (frame ends mid-field)")?;
        self.pos += len;
        Ok(s)
    }
}

/// Decodes frame payloads into [`WireRecord`]s.
///
/// Stateful only for the event-time delta chain (`dt` fields accumulate;
/// each `processes` record resets the chain), so one decoder serves a
/// whole connection across documents. All structural errors — unknown
/// tags, reserved flag bits, truncation, non-canonical varints, count
/// fields larger than the frame, time overflow — are reported as `Err`;
/// the decoder never panics on any input.
#[derive(Clone, Debug, Default)]
pub struct RecordDecoder {
    last_time: u64,
}

impl RecordDecoder {
    /// A fresh decoder (time chain at 0).
    #[must_use]
    pub fn new() -> RecordDecoder {
        RecordDecoder::default()
    }

    /// Decodes every record in one frame payload, handing each to `sink`.
    /// A `sink` returning `false` stops decoding early (the caller hit
    /// its own error and the rest of the frame is moot).
    ///
    /// # Errors
    ///
    /// A description of the first structural defect. The records already
    /// handed to `sink` remain valid; the caller decides whether partial
    /// frames are fatal (the `abc-service` session poisons the
    /// connection).
    pub fn decode_frame(
        &mut self,
        payload: &[u8],
        sink: &mut dyn FnMut(WireRecord) -> bool,
    ) -> Result<(), String> {
        if payload.is_empty() {
            return Err("empty frame".to_string());
        }
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        while c.remaining() > 0 {
            let rec = self.decode_record(&mut c)?;
            if !sink(rec) {
                return Ok(());
            }
        }
        Ok(())
    }

    fn decode_record(&mut self, c: &mut Cursor<'_>) -> Result<WireRecord, String> {
        let tag = c.byte()?;
        Ok(match tag {
            TAG_PROCESSES => {
                // A new document: restart the event-time delta chain.
                self.last_time = 0;
                WireRecord::Processes(c.index()?)
            }
            TAG_FAULTY => {
                let k = c.index()?;
                // Each index takes >= 1 byte, so a count beyond the frame
                // remainder is a lie — reject before allocating.
                if k > c.remaining() {
                    return Err(format!("faulty count {k} exceeds the frame"));
                }
                let mut v = Vec::with_capacity(k);
                for _ in 0..k {
                    v.push(c.index()?);
                }
                WireRecord::Faulty(v)
            }
            TAG_DECL_EVENTS => WireRecord::DeclaredEvents(c.index()?),
            TAG_DECL_MESSAGES => WireRecord::DeclaredMessages(c.index()?),
            TAG_EVENT => {
                let flags = c.byte()?;
                if flags & EV_RESERVED != 0 {
                    return Err(format!("event flags {flags:#04x} set reserved bits"));
                }
                let process = c.index()?;
                let dt = c.varint()?;
                let time = self
                    .last_time
                    .checked_add(dt)
                    .ok_or("event time overflows u64")?;
                let trigger = if flags & EV_TRIGGER != 0 {
                    Some(c.index()?)
                } else {
                    None
                };
                let label = if flags & EV_LABEL != 0 {
                    Some(c.varint()?)
                } else {
                    None
                };
                self.last_time = time;
                WireRecord::Event(EventRecord {
                    seq: None,
                    process,
                    time,
                    trigger,
                    received_only: flags & EV_RECEIVED_ONLY != 0,
                    label,
                    distinguished: flags & EV_DISTINGUISHED != 0,
                })
            }
            TAG_MESSAGE => {
                let flags = c.byte()?;
                if flags & MSG_RESERVED != 0 {
                    return Err(format!("message flags {flags:#04x} set reserved bits"));
                }
                let from = c.index()?;
                let to = c.index()?;
                let send_event = c.index()?;
                let send_time = c.varint()?;
                let (recv_event, recv_time) = if flags & MSG_DELIVERED != 0 {
                    let recv_event = c.index()?;
                    let recv_dt = c.varint()?;
                    let recv_time = send_time
                        .checked_add(recv_dt)
                        .ok_or("receive time overflows u64")?;
                    (Some(recv_event), Some(recv_time))
                } else {
                    (None, None)
                };
                WireRecord::Message(MessageRecord {
                    from,
                    to,
                    send_event,
                    recv_event,
                    send_time,
                    recv_time,
                })
            }
            TAG_END => WireRecord::End,
            TAG_XI => {
                let len = c.index()?;
                if len > c.remaining() {
                    return Err(format!("xi spec of {len} bytes exceeds the frame"));
                }
                let bytes = c.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| "xi spec is not valid UTF-8".to_string())?;
                WireRecord::Xi(s.to_string())
            }
            TAG_MARGIN => WireRecord::Margin,
            other => return Err(format!("unknown record tag {other:#04x}")),
        })
    }
}

/// Reassembles length-prefixed frames from a raw byte stream — the binary
/// counterpart of [`crate::textio::LineAssembler`], with the same
/// adversarial-input posture.
///
/// Push whatever bytes arrived with [`FrameAssembler::push`], then drain
/// completed frames with [`FrameAssembler::next_frame_into`] until it
/// returns `Ok(false)`. A length prefix beyond the cap is rejected from
/// the prefix alone — the declared payload is never buffered — so memory
/// stays bounded by the cap plus one read chunk as long as the caller
/// drains between pushes. After any error the assembler is poisoned and
/// keeps failing.
#[derive(Debug)]
pub struct FrameAssembler {
    cap: usize,
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
}

impl FrameAssembler {
    /// A new assembler enforcing `max_frame_len` bytes per frame payload.
    #[must_use]
    pub fn new(max_frame_len: usize) -> FrameAssembler {
        FrameAssembler {
            cap: max_frame_len,
            buf: Vec::new(),
            pos: 0,
            poisoned: false,
        }
    }

    /// Feeds a chunk of raw bytes.
    ///
    /// # Errors
    ///
    /// Only after a previous error poisoned the assembler.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), String> {
        if self.poisoned {
            return Err("frame assembler already failed".to_string());
        }
        self.buf.extend_from_slice(chunk);
        Ok(())
    }

    fn fail<T>(&mut self, message: String) -> Result<T, String> {
        self.poisoned = true;
        Err(message)
    }

    /// Extracts the next complete frame's payload into `out` (clearing it
    /// first — `out` is a reusable scratch buffer). Returns `Ok(false)`
    /// when more bytes are needed.
    ///
    /// # Errors
    ///
    /// A bad length prefix: non-canonical varint, zero length, or a
    /// length beyond the cap. The assembler is poisoned afterwards.
    pub fn next_frame_into(&mut self, out: &mut Vec<u8>) -> Result<bool, String> {
        if self.poisoned {
            return Err("frame assembler already failed".to_string());
        }
        let avail = self.buf.get(self.pos..).unwrap_or(&[]);
        let (len, prefix_len) = match decode_varint(avail) {
            Ok(Some(v)) => v,
            Ok(None) => return Ok(false),
            Err(m) => return self.fail(format!("bad frame length prefix: {m}")),
        };
        if len == 0 {
            return self.fail("empty frame".to_string());
        }
        if len > self.cap as u64 {
            let cap = self.cap;
            return self.fail(format!("frame of {len} bytes exceeds the {cap}-byte cap"));
        }
        let Ok(len) = usize::try_from(len) else {
            return self.fail(format!("frame of {len} bytes exceeds the platform range"));
        };
        let Some(payload) = avail.get(prefix_len..prefix_len.saturating_add(len)) else {
            return Ok(false);
        };
        out.clear();
        out.extend_from_slice(payload);
        self.pos += prefix_len + len;
        // Reclaim the consumed prefix once it dominates the buffer, so a
        // long-lived session reuses one allocation instead of growing.
        if self.pos >= 64 * 1024 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(true)
    }

    /// Verifies the stream ended on a frame boundary (call at EOF).
    ///
    /// # Errors
    ///
    /// Leftover bytes: the peer disconnected mid-frame.
    pub fn finish(&self) -> Result<(), String> {
        if !self.poisoned && self.buf.len() > self.pos {
            let n = self.buf.len() - self.pos;
            return Err(format!("connection ended mid-frame ({n} bytes buffered)"));
        }
        Ok(())
    }

    /// Bytes currently buffered but not yet drained as frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encodes [`WireRecord`]s into length-prefixed frames.
///
/// Records accumulate into a frame payload that is sealed (prefixed and
/// appended to the output) once it reaches the target size, so the
/// encoder emits a bounded-latency stream rather than one giant frame.
/// The event-time delta chain mirrors [`RecordDecoder`]'s.
#[derive(Debug)]
pub struct FrameWriter {
    out: Vec<u8>,
    frame: Vec<u8>,
    target: usize,
    last_time: u64,
}

impl Default for FrameWriter {
    fn default() -> FrameWriter {
        FrameWriter::new()
    }
}

impl FrameWriter {
    /// A writer sealing frames at [`DEFAULT_FRAME_TARGET`] bytes.
    #[must_use]
    pub fn new() -> FrameWriter {
        FrameWriter::with_target(DEFAULT_FRAME_TARGET)
    }

    /// A writer sealing frames once the payload reaches `target` bytes
    /// (each frame may overshoot by one record).
    #[must_use]
    pub fn with_target(target: usize) -> FrameWriter {
        FrameWriter {
            out: Vec::new(),
            frame: Vec::new(),
            target: target.max(1),
            last_time: 0,
        }
    }

    /// Appends one record to the current frame, sealing it if full.
    pub fn push_record(&mut self, rec: &WireRecord) {
        let f = &mut self.frame;
        match rec {
            WireRecord::Processes(n) => {
                self.last_time = 0;
                f.push(TAG_PROCESSES);
                push_varint(f, *n as u64);
            }
            WireRecord::Faulty(v) => {
                f.push(TAG_FAULTY);
                push_varint(f, v.len() as u64);
                for &p in v {
                    push_varint(f, p as u64);
                }
            }
            WireRecord::DeclaredEvents(n) => {
                f.push(TAG_DECL_EVENTS);
                push_varint(f, *n as u64);
            }
            WireRecord::DeclaredMessages(n) => {
                f.push(TAG_DECL_MESSAGES);
                push_varint(f, *n as u64);
            }
            WireRecord::Event(e) => {
                let mut flags = 0u8;
                if e.trigger.is_some() {
                    flags |= EV_TRIGGER;
                }
                if e.received_only {
                    flags |= EV_RECEIVED_ONLY;
                }
                if e.label.is_some() {
                    flags |= EV_LABEL;
                }
                if e.distinguished {
                    flags |= EV_DISTINGUISHED;
                }
                f.push(TAG_EVENT);
                f.push(flags);
                push_varint(f, e.process as u64);
                // Wrapping keeps a (simulator-impossible) time regression
                // encodable; the decoder's overflow check then rejects it,
                // matching the text parser's monotonicity error.
                push_varint(f, e.time.wrapping_sub(self.last_time));
                self.last_time = e.time;
                if let Some(t) = e.trigger {
                    push_varint(f, t as u64);
                }
                if let Some(l) = e.label {
                    push_varint(f, l);
                }
            }
            WireRecord::Message(m) => {
                let delivered = m.recv_event.is_some() && m.recv_time.is_some();
                f.push(TAG_MESSAGE);
                f.push(if delivered { MSG_DELIVERED } else { 0 });
                push_varint(f, m.from as u64);
                push_varint(f, m.to as u64);
                push_varint(f, m.send_event as u64);
                push_varint(f, m.send_time);
                if delivered {
                    push_varint(f, m.recv_event.unwrap_or(0) as u64);
                    push_varint(
                        f,
                        m.recv_time.unwrap_or(m.send_time).wrapping_sub(m.send_time),
                    );
                }
            }
            WireRecord::End => f.push(TAG_END),
            WireRecord::Xi(s) => {
                f.push(TAG_XI);
                push_varint(f, s.len() as u64);
                f.extend_from_slice(s.as_bytes());
            }
            WireRecord::Margin => f.push(TAG_MARGIN),
        }
        if self.frame.len() >= self.target {
            self.seal();
        }
    }

    /// Seals the current frame (no-op when the payload is empty — the
    /// grammar forbids empty frames).
    pub fn seal(&mut self) {
        if self.frame.is_empty() {
            return;
        }
        push_varint(&mut self.out, self.frame.len() as u64);
        self.out.extend_from_slice(&self.frame);
        self.frame.clear();
    }

    /// Seals any pending payload and returns the encoded byte stream.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        self.seal();
        self.out
    }
}

/// Encodes a `Ξ` spec (the value of the text protocol's `xi <P/Q>` line)
/// as a single standalone frame, for sending between documents on a
/// binary `abc-service` session.
#[must_use]
pub fn xi_frame(spec: &str) -> Vec<u8> {
    let mut w = FrameWriter::new();
    w.push_record(&WireRecord::Xi(spec.to_string()));
    w.finish()
}

impl Trace {
    /// Serializes the trace into binary frames in *streaming* order — the
    /// frame-for-line twin of [`Trace::to_stream_text`]: each delivered
    /// message record immediately precedes its receive event record
    /// (message indices renumbered to delivery order, undelivered
    /// messages trailing before `end`), with declared counts up front.
    /// Feeding the result to the binary decoder yields record-for-line
    /// the documents [`Trace::to_stream_text`] yields line-for-record.
    #[must_use]
    pub fn to_stream_binary(&self) -> Vec<u8> {
        let mut w = FrameWriter::new();
        for rec in self.to_stream_records() {
            w.push_record(&rec);
        }
        w.finish()
    }

    /// The trace's records in *streaming* order — exactly the sequence
    /// [`Trace::to_stream_binary`] encodes. Exposed so callers composing
    /// their own frames can interleave session-level records (such as
    /// [`WireRecord::Margin`]) while reusing the canonical ordering.
    #[must_use]
    pub fn to_stream_records(&self) -> Vec<WireRecord> {
        let mut w = Vec::with_capacity(self.events.len() + self.messages.len() + 5);
        w.push(WireRecord::Processes(self.num_processes));
        let faulty: Vec<usize> = self
            .faulty
            .iter()
            .enumerate()
            .filter_map(|(p, f)| f.then_some(p))
            .collect();
        w.push(WireRecord::Faulty(faulty));
        w.push(WireRecord::DeclaredEvents(self.events.len()));
        w.push(WireRecord::DeclaredMessages(self.messages.len()));
        // Same renumbering as to_stream_text: delivered messages take
        // indices in delivery order, undelivered ones follow in send
        // order.
        let mut new_index = vec![usize::MAX; self.messages.len()];
        let mut next = 0usize;
        for ev in &self.events {
            if let Some(slot) = ev.trigger.and_then(|mi| new_index.get_mut(mi)) {
                *slot = next;
                next += 1;
            }
        }
        for (mi, m) in self.messages.iter().enumerate() {
            if m.recv_event.is_none() {
                if let Some(slot) = new_index.get_mut(mi) {
                    *slot = next;
                    next += 1;
                }
            }
        }
        for ev in &self.events {
            if let Some(mi) = ev.trigger {
                let Some(m) = self.messages.get(mi) else {
                    continue; // defensive: trace invariants keep triggers in range
                };
                w.push(WireRecord::Message(MessageRecord {
                    from: m.from.0,
                    to: m.to.0,
                    send_event: m.send_event,
                    recv_event: m.recv_event,
                    send_time: m.send_time,
                    recv_time: m.recv_time,
                }));
                w.push(WireRecord::Event(EventRecord {
                    seq: None,
                    process: ev.process.0,
                    time: ev.time,
                    trigger: new_index.get(mi).copied(),
                    received_only: ev.received_only,
                    label: ev.label,
                    distinguished: ev.distinguished,
                }));
            } else {
                w.push(WireRecord::Event(EventRecord {
                    seq: None,
                    process: ev.process.0,
                    time: ev.time,
                    trigger: None,
                    received_only: ev.received_only,
                    label: ev.label,
                    distinguished: ev.distinguished,
                }));
            }
        }
        for m in &self.messages {
            if m.recv_event.is_none() {
                w.push(WireRecord::Message(MessageRecord {
                    from: m.from.0,
                    to: m.to.0,
                    send_event: m.send_event,
                    recv_event: None,
                    send_time: m.send_time,
                    recv_time: None,
                }));
            }
        }
        w.push(WireRecord::End);
        w
    }

    /// Parses and validates a trace from the binary framing — the binary
    /// twin of [`Trace::from_text`], running the same validation core.
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] whose `line` is the 1-based *record* number, on
    /// any structural defect (bad frame, bad varint, unknown tag) or any
    /// semantic inconsistency (same rules as text). An embedded `xi`
    /// record is rejected: it belongs to the service session layer, not
    /// to a trace document.
    pub fn from_binary(bytes: &[u8]) -> Result<Trace, TraceTextError> {
        let mut frames = FrameAssembler::new(DEFAULT_MAX_FRAME_LEN);
        let mut parser = TraceLineParser::new_document().without_header();
        let mut decoder = RecordDecoder::new();
        let wire_err = |parser: &TraceLineParser, message: String| TraceTextError {
            line: parser.lines_fed() + 1,
            message,
        };
        frames.push(bytes).map_err(|m| wire_err(&parser, m))?;
        let mut payload = Vec::new();
        loop {
            match frames.next_frame_into(&mut payload) {
                Ok(true) => {}
                Ok(false) => break,
                Err(m) => return Err(wire_err(&parser, m)),
            }
            let mut first_err: Option<TraceTextError> = None;
            let structural = decoder.decode_frame(&payload, &mut |rec| {
                let fed = match rec.to_trace_record() {
                    Some(tr) => parser.feed_record(tr),
                    None => Err(wire_err(
                        &parser,
                        "unexpected xi record in a trace document".to_string(),
                    )),
                };
                match fed {
                    Ok(_) => true,
                    Err(e) => {
                        first_err = Some(e);
                        false
                    }
                }
            });
            if let Some(e) = first_err {
                return Err(e);
            }
            structural.map_err(|m| wire_err(&parser, m))?;
        }
        frames.finish().map_err(|m| wire_err(&parser, m))?;
        parser.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{BandDelay, Lossy};
    use crate::engine::{RunLimits, Simulation};
    use crate::process::{Context, Process};
    use abc_core::ProcessId;

    struct Gossip {
        remaining: u32,
    }
    impl Process<u32> for Gossip {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
                ctx.set_label(u64::from(*m));
            }
        }
    }

    fn sample_trace() -> Trace {
        let mut lossy = Lossy::new(BandDelay::new(1, 7, 13));
        lossy.drop_link(ProcessId(0), ProcessId(2));
        let mut sim = Simulation::new(lossy);
        sim.add_process(Gossip { remaining: 15 });
        sim.add_faulty_process(Gossip { remaining: 15 });
        sim.add_process(Gossip { remaining: 15 });
        sim.run(RunLimits {
            max_events: 60,
            max_time: u64::MAX,
        });
        sim.trace().clone()
    }

    #[test]
    fn varint_round_trips_and_rejects_non_canonical() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(decode_varint(&buf).unwrap(), Some((v, buf.len())));
            // Partial prefixes ask for more bytes instead of failing.
            for cut in 0..buf.len() - 1 {
                assert_eq!(decode_varint(&buf[..cut]).unwrap(), None, "v={v} cut={cut}");
            }
        }
        // Overlong: 0 encoded in two bytes.
        assert!(decode_varint(&[0x80, 0x00]).is_err());
        // Overlong: 1 encoded with a padded continuation.
        assert!(decode_varint(&[0x81, 0x00]).is_err());
        // Eleven continuation bytes never terminate a u64.
        assert!(decode_varint(&[0x80; 11]).is_err());
        // 10th byte may only contribute the top bit.
        assert!(
            decode_varint(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]).is_err()
        );
    }

    #[test]
    fn binary_round_trip_equals_text_round_trip() {
        let trace = sample_trace();
        let via_binary = Trace::from_binary(&trace.to_stream_binary()).unwrap();
        let via_text = Trace::from_text(&trace.to_stream_text()).unwrap();
        assert_eq!(via_binary.events(), via_text.events());
        assert_eq!(via_binary.messages(), via_text.messages());
        assert_eq!(via_binary.num_processes(), via_text.num_processes());
        for p in 0..trace.num_processes() {
            assert_eq!(
                via_binary.is_faulty(ProcessId(p)),
                via_text.is_faulty(ProcessId(p))
            );
        }
    }

    #[test]
    fn frame_assembler_enforces_the_cap_from_the_prefix_alone() {
        let mut asm = FrameAssembler::new(1024);
        // A prefix claiming 4 GB must fail before any payload arrives.
        let mut prefix = Vec::new();
        push_varint(&mut prefix, 4 << 30);
        asm.push(&prefix).unwrap();
        let mut out = Vec::new();
        let e = asm.next_frame_into(&mut out).unwrap_err();
        assert!(e.contains("exceeds"), "{e}");
        // Poisoned afterwards.
        assert!(asm.push(b"x").is_err());
    }

    #[test]
    fn frame_assembler_handles_byte_at_a_time_arrival() {
        let trace = sample_trace();
        let bytes = trace.to_stream_binary();
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_LEN);
        let mut payload = Vec::new();
        let mut frames = 0usize;
        for b in &bytes {
            asm.push(std::slice::from_ref(b)).unwrap();
            while asm.next_frame_into(&mut payload).unwrap() {
                frames += 1;
            }
        }
        asm.finish().unwrap();
        assert!(frames >= 1);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn truncated_stream_is_detected_at_finish() {
        let bytes = sample_trace().to_stream_binary();
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_LEN);
        asm.push(&bytes[..bytes.len() - 1]).unwrap();
        let mut payload = Vec::new();
        while asm.next_frame_into(&mut payload).unwrap() {}
        let e = asm.finish().unwrap_err();
        assert!(e.contains("mid-frame"), "{e}");
    }

    #[test]
    fn decoder_rejects_structural_garbage_without_panicking() {
        let cases: &[&[u8]] = &[
            &[0x00],                      // tag 0 is unknown
            &[0xff],                      // unknown tag
            &[TAG_EVENT],                 // truncated: no flags
            &[TAG_EVENT, 0xf0],           // reserved event flag bits
            &[TAG_MESSAGE, 0x02],         // reserved message flag bits
            &[TAG_FAULTY, 0x7f],          // faulty count exceeds the frame
            &[TAG_XI, 0x05, b'a'],        // xi length exceeds the frame
            &[TAG_XI, 0x01, 0xc0],        // xi bytes are not UTF-8
            &[TAG_PROCESSES, 0x80],       // truncated varint
            &[TAG_PROCESSES, 0x80, 0x00], // overlong varint
        ];
        for case in cases {
            let mut dec = RecordDecoder::new();
            let r = dec.decode_frame(case, &mut |_| true);
            assert!(r.is_err(), "accepted {case:x?}");
        }
        // Empty frames are structural errors too.
        assert!(RecordDecoder::new()
            .decode_frame(&[], &mut |_| true)
            .is_err());
    }

    #[test]
    fn from_binary_rejects_semantic_corruption_like_text() {
        // Flip the process index of the first event out of range: the
        // shared validation core must reject it with the text error.
        let mut w = FrameWriter::new();
        w.push_record(&WireRecord::Processes(1));
        w.push_record(&WireRecord::Faulty(Vec::new()));
        w.push_record(&WireRecord::Event(EventRecord {
            seq: None,
            process: 7,
            time: 0,
            trigger: None,
            received_only: false,
            label: None,
            distinguished: false,
        }));
        w.push_record(&WireRecord::End);
        let e = Trace::from_binary(&w.finish()).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        // Record numbers land on the offending record (processes=1,
        // faulty=2, event=3).
        assert_eq!(e.line, 3);
    }

    #[test]
    fn from_binary_rejects_embedded_xi_records() {
        let mut w = FrameWriter::new();
        w.push_record(&WireRecord::Xi("3/2".to_string()));
        let e = Trace::from_binary(&w.finish()).unwrap_err();
        assert!(e.message.contains("xi"), "{e}");
    }

    #[test]
    fn worked_hex_example_from_module_docs() {
        // Keep the README / module-doc example honest.
        let mut w = FrameWriter::new();
        w.push_record(&WireRecord::Processes(1));
        w.push_record(&WireRecord::Faulty(Vec::new()));
        w.push_record(&WireRecord::Event(EventRecord {
            seq: None,
            process: 0,
            time: 0,
            trigger: None,
            received_only: false,
            label: None,
            distinguished: false,
        }));
        w.push_record(&WireRecord::End);
        assert_eq!(
            w.finish(),
            [0x09, 0x01, 0x01, 0x02, 0x00, 0x05, 0x00, 0x00, 0x00, 0x07]
        );
    }
}
