//! Delay models: the network adversary.
//!
//! A [`DelayModel`] decides, per message, its end-to-end delay (or drops
//! it). The models here generate the execution families the paper's
//! experiments need:
//!
//! * [`FixedDelay`], [`BandDelay`] — synchronous / Θ-style bands. A band
//!   `[lo, hi]` guarantees ABC admissibility for every `Ξ > hi/lo` (a
//!   relevant cycle's event order forces `|Z−|·lo < |Z+|·hi`).
//! * [`PerLinkBand`] — per-link bands (not-fully-connected topologies,
//!   VLSI place-and-route, WTL-style asymmetry).
//! * [`GrowingDelay`] — delays that increase without bound (the paper's
//!   spacecraft-formation scenario, §5.1/§5.3) while keeping pairwise
//!   ratios banded.
//! * [`AdversarialSpan`] — an ABC stress adversary: designated victim
//!   links run maximally slow while the rest run maximally fast, driving
//!   relevant-cycle ratios toward the admissibility boundary.
//!
//! All randomized models are seeded and deterministic.

use abc_core::ProcessId;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The fate of a message decided by a [`DelayModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given delay (may be 0: the ABC model allows
    /// zero-delay messages, cf. Fig. 1's `m3`).
    After(u64),
    /// Drop the message (only meaningful for lossy-model experiments; the
    /// paper's admissible executions deliver everything).
    Drop,
}

/// Decides message delays; the mutable receiver allows stateful adversaries.
pub trait DelayModel {
    /// The delay of the `seq`-th message overall, sent at `send_time` from
    /// `from` to `to`.
    fn delivery(&mut self, from: ProcessId, to: ProcessId, send_time: u64, seq: u64) -> Delivery;
}

impl<D: DelayModel + ?Sized> DelayModel for Box<D> {
    fn delivery(&mut self, from: ProcessId, to: ProcessId, send_time: u64, seq: u64) -> Delivery {
        (**self).delivery(from, to, send_time, seq)
    }
}

/// Every message takes exactly `d` time units.
#[derive(Clone, Copy, Debug)]
pub struct FixedDelay {
    d: u64,
}

impl FixedDelay {
    /// Fixed delay `d`.
    #[must_use]
    pub fn new(d: u64) -> FixedDelay {
        FixedDelay { d }
    }
}

impl DelayModel for FixedDelay {
    fn delivery(&mut self, _f: ProcessId, _t: ProcessId, _s: u64, _q: u64) -> Delivery {
        Delivery::After(self.d)
    }
}

/// Uniformly random delays in `[lo, hi]` (seeded).
///
/// Guarantees ABC admissibility for every `Ξ > hi/lo` and Θ-admissibility
/// for `Θ ≥ hi/lo`.
#[derive(Clone, Debug)]
pub struct BandDelay {
    lo: u64,
    hi: u64,
    rng: SmallRng,
}

impl BandDelay {
    /// Band `[lo, hi]`, deterministic per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > hi`.
    #[must_use]
    pub fn new(lo: u64, hi: u64, seed: u64) -> BandDelay {
        assert!(lo > 0 && lo <= hi, "need 0 < lo <= hi");
        BandDelay {
            lo,
            hi,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for BandDelay {
    fn delivery(&mut self, _f: ProcessId, _t: ProcessId, _s: u64, _q: u64) -> Delivery {
        Delivery::After(self.rng.random_range(self.lo..=self.hi))
    }
}

/// Per-link delay bands; links without an entry use the default band.
#[derive(Clone, Debug)]
pub struct PerLinkBand {
    default: (u64, u64),
    links: Vec<((usize, usize), (u64, u64))>,
    rng: SmallRng,
}

impl PerLinkBand {
    /// Creates the model with a default band.
    ///
    /// # Panics
    ///
    /// Panics if the band is invalid.
    #[must_use]
    pub fn new(default_lo: u64, default_hi: u64, seed: u64) -> PerLinkBand {
        assert!(default_lo > 0 && default_lo <= default_hi);
        PerLinkBand {
            default: (default_lo, default_hi),
            links: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Overrides the band of the directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the band is invalid.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, lo: u64, hi: u64) {
        assert!(lo > 0 && lo <= hi);
        self.links.retain(|(k, _)| *k != (from.0, to.0));
        self.links.push(((from.0, to.0), (lo, hi)));
    }

    fn band(&self, from: ProcessId, to: ProcessId) -> (u64, u64) {
        self.links
            .iter()
            .find(|(k, _)| *k == (from.0, to.0))
            .map(|(_, b)| *b)
            .unwrap_or(self.default)
    }
}

impl DelayModel for PerLinkBand {
    fn delivery(&mut self, f: ProcessId, t: ProcessId, _s: u64, _q: u64) -> Delivery {
        let (lo, hi) = self.band(f, t);
        Delivery::After(self.rng.random_range(lo..=hi))
    }
}

/// Delays that grow without bound: the band `[lo, hi]` is scaled by
/// `1 + send_time/tau` (so delays double every `tau` time units of send
/// time). Models the spacecraft clusters of §5.1/§5.3: no finite delay
/// bound ever holds, yet pairwise delay ratios stay near `hi/lo`, keeping
/// executions ABC-admissible for `Ξ` comfortably above `hi/lo`.
#[derive(Clone, Debug)]
pub struct GrowingDelay {
    lo: u64,
    hi: u64,
    tau: u64,
    rng: SmallRng,
}

impl GrowingDelay {
    /// Base band `[lo, hi]`, doubling timescale `tau`.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters.
    #[must_use]
    pub fn new(lo: u64, hi: u64, tau: u64, seed: u64) -> GrowingDelay {
        assert!(lo > 0 && lo <= hi && tau > 0);
        GrowingDelay {
            lo,
            hi,
            tau,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for GrowingDelay {
    fn delivery(&mut self, _f: ProcessId, _t: ProcessId, send_time: u64, _q: u64) -> Delivery {
        let base = self.rng.random_range(self.lo..=self.hi);
        // scale = 1 + send_time / tau, computed in u128 to avoid overflow.
        let scaled = u128::from(base) * (u128::from(self.tau) + u128::from(send_time))
            / u128::from(self.tau);
        Delivery::After(u64::try_from(scaled).unwrap_or(u64::MAX))
    }
}

/// ABC stress adversary: messages *to* the designated victim process take
/// the maximal delay `hi`; every other message takes the minimal delay
/// `lo`. Drives the skew between the victim's view and the rest of the
/// system toward the admissibility boundary (relevant-cycle ratios approach
/// `hi/lo`), which is how the precision experiments probe the tightness of
/// the `2Ξ` bound (Theorem 2/3).
#[derive(Clone, Copy, Debug)]
pub struct AdversarialSpan {
    lo: u64,
    hi: u64,
    victim: ProcessId,
}

impl AdversarialSpan {
    /// Victim `victim`; band `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the band is invalid.
    #[must_use]
    pub fn new(lo: u64, hi: u64, victim: ProcessId) -> AdversarialSpan {
        assert!(lo > 0 && lo <= hi);
        AdversarialSpan { lo, hi, victim }
    }
}

impl DelayModel for AdversarialSpan {
    fn delivery(&mut self, _f: ProcessId, to: ProcessId, _s: u64, _q: u64) -> Delivery {
        Delivery::After(if to == self.victim { self.hi } else { self.lo })
    }
}

/// Wraps a model and drops messages on selected directed links (for lossy
/// experiments, e.g. the MCM comparisons).
pub struct Lossy<D> {
    inner: D,
    dropped_links: Vec<(usize, usize)>,
}

impl<D> Lossy<D> {
    /// Wraps `inner` with no dropped links.
    #[must_use]
    pub fn new(inner: D) -> Lossy<D> {
        Lossy {
            inner,
            dropped_links: Vec::new(),
        }
    }

    /// Drops every message on `from → to`.
    pub fn drop_link(&mut self, from: ProcessId, to: ProcessId) {
        self.dropped_links.push((from.0, to.0));
    }
}

impl<D: DelayModel> DelayModel for Lossy<D> {
    fn delivery(&mut self, f: ProcessId, t: ProcessId, s: u64, q: u64) -> Delivery {
        if self.dropped_links.contains(&(f.0, t.0)) {
            Delivery::Drop
        } else {
            self.inner.delivery(f, t, s, q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_is_deterministic_per_seed() {
        let mut a = BandDelay::new(5, 10, 42);
        let mut b = BandDelay::new(5, 10, 42);
        for q in 0..50 {
            assert_eq!(
                a.delivery(ProcessId(0), ProcessId(1), q, q),
                b.delivery(ProcessId(0), ProcessId(1), q, q)
            );
        }
    }

    #[test]
    fn band_respects_bounds() {
        let mut m = BandDelay::new(3, 7, 1);
        for q in 0..200 {
            match m.delivery(ProcessId(0), ProcessId(1), 0, q) {
                Delivery::After(d) => assert!((3..=7).contains(&d)),
                Delivery::Drop => panic!("band never drops"),
            }
        }
    }

    #[test]
    fn growing_delay_grows() {
        let mut m = GrowingDelay::new(10, 10, 100, 7);
        let Delivery::After(early) = m.delivery(ProcessId(0), ProcessId(1), 0, 0) else {
            panic!()
        };
        let Delivery::After(late) = m.delivery(ProcessId(0), ProcessId(1), 10_000, 1) else {
            panic!()
        };
        assert_eq!(early, 10);
        assert_eq!(late, 10 * (100 + 10_000) / 100);
    }

    #[test]
    fn adversarial_span_targets_victim() {
        let mut m = AdversarialSpan::new(1, 9, ProcessId(2));
        assert_eq!(
            m.delivery(ProcessId(0), ProcessId(2), 0, 0),
            Delivery::After(9)
        );
        assert_eq!(
            m.delivery(ProcessId(0), ProcessId(1), 0, 0),
            Delivery::After(1)
        );
    }

    #[test]
    fn lossy_drops_selected_links() {
        let mut m = Lossy::new(FixedDelay::new(4));
        m.drop_link(ProcessId(0), ProcessId(1));
        assert_eq!(m.delivery(ProcessId(0), ProcessId(1), 0, 0), Delivery::Drop);
        assert_eq!(
            m.delivery(ProcessId(1), ProcessId(0), 0, 0),
            Delivery::After(4)
        );
    }

    #[test]
    fn per_link_band_overrides() {
        let mut m = PerLinkBand::new(5, 5, 3);
        m.set_link(ProcessId(0), ProcessId(1), 20, 20);
        assert_eq!(
            m.delivery(ProcessId(0), ProcessId(1), 0, 0),
            Delivery::After(20)
        );
        assert_eq!(
            m.delivery(ProcessId(1), ProcessId(0), 0, 0),
            Delivery::After(5)
        );
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn invalid_band_panics() {
        let _ = BandDelay::new(9, 3, 0);
    }

    #[test]
    fn boxed_models_work_and_cross_threads() {
        // Sweep workers build their delay models behind `Box<dyn DelayModel
        // + Send>`; the blanket Box impl must delegate, and the built models
        // must be constructible inside a spawned worker.
        let mut m: Box<dyn DelayModel + Send> = Box::new(FixedDelay::new(4));
        assert_eq!(
            m.delivery(ProcessId(0), ProcessId(1), 0, 0),
            Delivery::After(4)
        );
        let handle = std::thread::spawn(move || {
            let mut inner = m;
            inner.delivery(ProcessId(1), ProcessId(0), 5, 1)
        });
        assert_eq!(handle.join().unwrap(), Delivery::After(4));
    }
}
