//! A compact line-oriented text serialization for [`Trace`] (no serde).
//!
//! Any swept or simulated execution can be persisted, shipped, and
//! re-checked offline (`Trace::replay_into_monitor`, batch checking via
//! `Trace::to_execution_graph`). The format is versioned, self-describing,
//! and diff-friendly:
//!
//! ```text
//! abc-trace v1
//! # full-line comments and blank lines are ignored
//! processes 3
//! faulty 1
//! events 4
//! messages 2
//! e 0 0 0 - 0 - 0
//! e 1 1 0 - 0 5 1
//! e 2 2 0 - 0 - 0
//! e 3 0 7 0 1 - 0
//! m 1 0 1 3 0 7
//! m 2 0 2 - 0 -
//! end
//! ```
//!
//! * `e <seq> <process> <time> <trigger|-> <received_only> <label|-> <distinguished>`
//!   — one line per event, in global chronological order; `trigger` is the
//!   index of the delivering `m` line (`-` for wake-ups).
//! * `m <from> <to> <send_event> <recv_event|-> <send_time> <recv_time|->`
//!   — one line per message, in send order; `-` marks in-flight/dropped.
//! * `faulty` lists faulty process indices (the line is present even when
//!   empty, so files are self-contained).
//!
//! The parser validates everything the simulator guarantees: counts match,
//! indices are in range, events appear in `seq` order, and event↔message
//! cross references agree — a parsed trace is as trustworthy as a captured
//! one.

use std::fmt;

use abc_core::ProcessId;

use crate::trace::{Trace, TraceEvent, TraceMessage};

/// Format version written by [`Trace::to_text`] and accepted by
/// [`Trace::from_text`].
pub const TRACE_FORMAT_VERSION: &str = "v1";

/// A parse/validation error for the trace text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTextError {
    /// 1-based line number the error was detected at (0 for end-of-input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace text: {}", self.message)
        } else {
            write!(f, "trace text, line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceTextError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TraceTextError> {
    Err(TraceTextError {
        line,
        message: message.into(),
    })
}

fn opt_u64(field: &str) -> Result<Option<u64>, String> {
    if field == "-" {
        Ok(None)
    } else {
        field
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("{field:?}: {e}"))
    }
}

fn opt_usize(field: &str) -> Result<Option<usize>, String> {
    if field == "-" {
        Ok(None)
    } else {
        field
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("{field:?}: {e}"))
    }
}

fn flag(field: &str) -> Result<bool, String> {
    match field {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("expected flag 0/1, got {other:?}")),
    }
}

fn fmt_opt<T: fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn take<'a, I: Iterator<Item = (usize, &'a str)>>(
    lines: &mut I,
    what: &str,
) -> Result<(usize, &'a str), TraceTextError> {
    match lines.next() {
        Some(x) => Ok(x),
        None => err(0, format!("unexpected end of input, expected {what}")),
    }
}

fn at<T>(ln: usize, r: Result<T, String>) -> Result<T, TraceTextError> {
    r.map_err(|message| TraceTextError { line: ln, message })
}

fn scalar(line: (usize, &str), key: &str) -> Result<usize, TraceTextError> {
    let (ln, l) = line;
    match l.strip_prefix(key).map(str::trim) {
        Some(v) if !v.is_empty() => match v.parse() {
            Ok(n) => Ok(n),
            Err(e) => err(ln, format!("{key}: {e}")),
        },
        _ => err(ln, format!("expected `{key} <count>`, got {l:?}")),
    }
}

impl Trace {
    /// Serializes the trace into the line-oriented text format (see the
    /// [`crate::textio`] module docs for the grammar).
    #[must_use]
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(32 * (self.events.len() + self.messages.len()) + 64);
        let _ = writeln!(out, "abc-trace {TRACE_FORMAT_VERSION}");
        let _ = writeln!(out, "processes {}", self.num_processes);
        let mut faulty_line = String::from("faulty");
        for (p, f) in self.faulty.iter().enumerate() {
            if *f {
                faulty_line.push(' ');
                faulty_line.push_str(&p.to_string());
            }
        }
        let _ = writeln!(out, "{faulty_line}");
        let _ = writeln!(out, "events {}", self.events.len());
        let _ = writeln!(out, "messages {}", self.messages.len());
        for ev in &self.events {
            let _ = writeln!(
                out,
                "e {} {} {} {} {} {} {}",
                ev.seq,
                ev.process.0,
                ev.time,
                fmt_opt(ev.trigger),
                u8::from(ev.received_only),
                fmt_opt(ev.label),
                u8::from(ev.distinguished),
            );
        }
        for m in &self.messages {
            let _ = writeln!(
                out,
                "m {} {} {} {} {} {}",
                m.from.0,
                m.to.0,
                m.send_event,
                fmt_opt(m.recv_event),
                m.send_time,
                fmt_opt(m.recv_time),
            );
        }
        out.push_str("end\n");
        out
    }

    /// Parses and validates a trace from the text format.
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] with the offending line on malformed input, count
    /// mismatches, out-of-range indices, or inconsistent event↔message
    /// cross references.
    pub fn from_text(text: &str) -> Result<Trace, TraceTextError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

        let (ln, header) = take(&mut lines, "header")?;
        match header.strip_prefix("abc-trace ") {
            Some(TRACE_FORMAT_VERSION) => {}
            Some(v) => return err(ln, format!("unsupported version {v:?}")),
            None => return err(ln, "missing `abc-trace <version>` header"),
        }
        let num_processes = scalar(take(&mut lines, "processes")?, "processes")?;

        let (ln, faulty_line) = take(&mut lines, "faulty")?;
        let mut faulty = vec![false; num_processes];
        match faulty_line.strip_prefix("faulty") {
            Some(rest) => {
                for field in rest.split_whitespace() {
                    let p: usize = match field.parse() {
                        Ok(p) => p,
                        Err(e) => return err(ln, format!("faulty index {field:?}: {e}")),
                    };
                    if p >= num_processes {
                        return err(ln, format!("faulty index {p} out of range"));
                    }
                    faulty[p] = true;
                }
            }
            None => return err(ln, format!("expected `faulty …`, got {faulty_line:?}")),
        }

        let num_events = scalar(take(&mut lines, "events")?, "events")?;
        let num_messages = scalar(take(&mut lines, "messages")?, "messages")?;

        let mut events: Vec<TraceEvent> = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            let (ln, l) = take(&mut lines, "an `e` line")?;
            let fields: Vec<&str> = l.split_whitespace().collect();
            if fields.len() != 8 || fields[0] != "e" {
                return err(ln, format!("expected `e` line with 7 fields, got {l:?}"));
            }
            let seq = at(
                ln,
                opt_usize(fields[1]).and_then(|v| v.ok_or("seq required".into())),
            )?;
            if seq != events.len() {
                return err(ln, format!("event seq {seq}, expected {}", events.len()));
            }
            let process = at(
                ln,
                opt_usize(fields[2]).and_then(|v| v.ok_or("process required".into())),
            )?;
            if process >= num_processes {
                return err(ln, format!("process {process} out of range"));
            }
            let time = at(
                ln,
                opt_u64(fields[3]).and_then(|v| v.ok_or("time required".into())),
            )?;
            let trigger = at(ln, opt_usize(fields[4]))?;
            if let Some(t) = trigger {
                if t >= num_messages {
                    return err(ln, format!("trigger {t} out of range"));
                }
            }
            let received_only = at(ln, flag(fields[5]))?;
            let label = at(ln, opt_u64(fields[6]))?;
            let distinguished = at(ln, flag(fields[7]))?;
            if events.last().is_some_and(|prev| prev.time > time) {
                return err(ln, "event times must be non-decreasing");
            }
            events.push(TraceEvent {
                seq,
                process: ProcessId(process),
                time,
                trigger,
                received_only,
                label,
                distinguished,
            });
        }

        let mut messages: Vec<TraceMessage> = Vec::with_capacity(num_messages);
        for _ in 0..num_messages {
            let (ln, l) = take(&mut lines, "an `m` line")?;
            let fields: Vec<&str> = l.split_whitespace().collect();
            if fields.len() != 7 || fields[0] != "m" {
                return err(ln, format!("expected `m` line with 6 fields, got {l:?}"));
            }
            let from = at(
                ln,
                opt_usize(fields[1]).and_then(|v| v.ok_or("from required".into())),
            )?;
            let to = at(
                ln,
                opt_usize(fields[2]).and_then(|v| v.ok_or("to required".into())),
            )?;
            if from >= num_processes || to >= num_processes {
                return err(ln, format!("endpoint out of range in {l:?}"));
            }
            let send_event = at(
                ln,
                opt_usize(fields[3]).and_then(|v| v.ok_or("send_event required".into())),
            )?;
            if send_event >= num_events {
                return err(ln, format!("send_event {send_event} out of range"));
            }
            let recv_event = at(ln, opt_usize(fields[4]))?;
            if let Some(r) = recv_event {
                if r >= num_events {
                    return err(ln, format!("recv_event {r} out of range"));
                }
            }
            let send_time = at(
                ln,
                opt_u64(fields[5]).and_then(|v| v.ok_or("send_time required".into())),
            )?;
            let recv_time = at(ln, opt_u64(fields[6]))?;
            if recv_event.is_some() != recv_time.is_some() {
                return err(ln, "recv_event and recv_time must both be set or both `-`");
            }
            messages.push(TraceMessage {
                from: ProcessId(from),
                to: ProcessId(to),
                send_event,
                recv_event,
                send_time,
                recv_time,
            });
        }

        let (ln, end) = take(&mut lines, "`end`")?;
        if end != "end" {
            return err(ln, format!("expected `end`, got {end:?}"));
        }
        if let Some((ln, l)) = lines.next() {
            return err(ln, format!("trailing content after `end`: {l:?}"));
        }

        // Cross validation: the event/message references must describe one
        // consistent execution.
        for (idx, ev) in events.iter().enumerate() {
            if let Some(mi) = ev.trigger {
                let m = &messages[mi];
                if m.recv_event != Some(idx) {
                    return err(
                        0,
                        format!(
                            "event {idx} claims trigger m{mi}, but m{mi} recv_event is {:?}",
                            m.recv_event
                        ),
                    );
                }
                if m.to != ev.process {
                    return err(
                        0,
                        format!("m{mi} addressed to {}, received at {}", m.to, ev.process),
                    );
                }
            }
        }
        for (mi, m) in messages.iter().enumerate() {
            let sender = &events[m.send_event];
            if sender.process != m.from {
                return err(
                    0,
                    format!(
                        "m{mi} sent from {}, but event {} is at {}",
                        m.from, m.send_event, sender.process
                    ),
                );
            }
            if sender.time != m.send_time {
                return err(
                    0,
                    format!(
                        "m{mi} send_time {} != sending event time {}",
                        m.send_time, sender.time
                    ),
                );
            }
            if let (Some(r), Some(rt)) = (m.recv_event, m.recv_time) {
                if r <= m.send_event {
                    return err(
                        0,
                        format!(
                            "m{mi} received (event {r}) no later than sent (event {})",
                            m.send_event
                        ),
                    );
                }
                let recv = &events[r];
                if recv.trigger != Some(mi) {
                    return err(
                        0,
                        format!(
                            "m{mi} claims recv_event {r}, but event {r} has trigger {:?}",
                            recv.trigger
                        ),
                    );
                }
                if recv.time != rt {
                    return err(
                        0,
                        format!("m{mi} recv_time {rt} != receiving event time {}", recv.time),
                    );
                }
            }
        }

        Ok(Trace {
            num_processes,
            events,
            messages,
            faulty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{BandDelay, Lossy};
    use crate::engine::{RunLimits, Simulation};
    use crate::process::{Context, Process};

    struct Gossip {
        remaining: u32,
    }
    impl Process<u32> for Gossip {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
                ctx.set_label(u64::from(*m));
            }
        }
    }

    fn sample_trace() -> Trace {
        let mut lossy = Lossy::new(BandDelay::new(1, 7, 13));
        lossy.drop_link(ProcessId(0), ProcessId(2));
        let mut sim = Simulation::new(lossy);
        sim.add_process(Gossip { remaining: 15 });
        sim.add_faulty_process(Gossip { remaining: 15 });
        sim.add_process(Gossip { remaining: 15 });
        sim.run(RunLimits {
            max_events: 60,
            max_time: u64::MAX,
        });
        sim.trace().clone()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed.num_processes(), trace.num_processes());
        assert_eq!(parsed.events(), trace.events());
        assert_eq!(parsed.messages(), trace.messages());
        for p in 0..trace.num_processes() {
            assert_eq!(
                parsed.is_faulty(ProcessId(p)),
                trace.is_faulty(ProcessId(p))
            );
        }
        // Second serialization is byte-identical (canonical form).
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let trace = sample_trace();
        let mut text = String::from("# captured by test\n\n");
        text.push_str(&trace.to_text());
        text.push_str("\n# trailing comment\n");
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed.events(), trace.events());
    }

    #[test]
    fn parser_rejects_corrupted_input() {
        let text = sample_trace().to_text();
        // Version mismatch.
        assert!(
            Trace::from_text(&text.replace("abc-trace v1", "abc-trace v9"))
                .unwrap_err()
                .to_string()
                .contains("version")
        );
        // Truncated: drop the last two lines (one m line + end).
        let truncated: Vec<&str> = text.lines().collect();
        let truncated = truncated[..truncated.len() - 2].join("\n");
        assert!(Trace::from_text(&truncated).is_err());
        // Cross-reference corruption: retarget a delivered message.
        let broken = text.replacen("m 0 1", "m 0 2", 1);
        if broken != text {
            assert!(Trace::from_text(&broken).is_err());
        }
        // Count corruption.
        let broken = text.replacen("events ", "events 9", 1);
        assert!(Trace::from_text(&broken).is_err());
    }

    #[test]
    fn parsed_traces_check_like_captured_ones() {
        use abc_core::{check, Xi};
        let trace = sample_trace();
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        let (g0, g1) = (trace.to_execution_graph(), parsed.to_execution_graph());
        assert_eq!(g0, g1);
        let xi = Xi::from_integer(3);
        assert_eq!(
            check::is_admissible(&g0, &xi).unwrap(),
            check::is_admissible(&g1, &xi).unwrap()
        );
        let mon = parsed.replay_into_monitor(&xi).unwrap();
        assert_eq!(mon.is_admissible(), check::is_admissible(&g1, &xi).unwrap());
    }
}
