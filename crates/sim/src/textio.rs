//! A compact line-oriented text serialization for [`Trace`] (no serde),
//! with an incremental per-line parser shared by files and sockets.
//!
//! Any swept or simulated execution can be persisted, shipped, and
//! re-checked offline (`Trace::replay_into_monitor`, batch checking via
//! `Trace::to_execution_graph`). The format is versioned, self-describing,
//! and diff-friendly:
//!
//! ```text
//! abc-trace v1
//! # full-line comments and blank lines are ignored
//! processes 3
//! faulty 1
//! events 4
//! messages 2
//! e 0 0 0 - 0 - 0
//! e 1 1 0 - 0 5 1
//! e 2 2 0 - 0 - 0
//! e 3 0 7 0 1 - 0
//! m 1 0 1 3 0 7
//! m 2 0 2 - 0 -
//! end
//! ```
//!
//! * `e <seq> <process> <time> <trigger|-> <received_only> <label|-> <distinguished>`
//!   — one line per event, in global chronological order; `trigger` is the
//!   index of the delivering `m` line (`-` for wake-ups).
//! * `m <from> <to> <send_event> <recv_event|-> <send_time> <recv_time|->`
//!   — one line per message; `-` marks in-flight/dropped. A message's index
//!   is its position among the `m` lines.
//! * `faulty` lists faulty process indices (the line is present even when
//!   empty, so files are self-contained).
//! * The `events`/`messages` count lines are declarations, validated at
//!   `end`; a live stream producer that cannot know them up front may omit
//!   them.
//!
//! # Two line orders, one grammar
//!
//! [`Trace::to_text`] writes the canonical *document* order above: all `e`
//! lines, then all `m` lines in send order. That order is diff-friendly but
//! cannot be monitored as it arrives — an `e` line names its triggering
//! message by index before that `m` line has been seen.
//!
//! [`Trace::to_stream_text`] writes the same grammar in *streaming* order:
//! each delivered message's `m` line immediately precedes its receive `e`
//! line (message indices are renumbered to delivery order; undelivered
//! messages trail at the end). In this order every line is fully resolvable
//! the moment it arrives, which is what a live trace source naturally emits
//! and what the `abc-service` TCP ingestion protocol speaks.
//!
//! [`TraceLineParser`] accepts both:
//!
//! * **document mode** ([`TraceLineParser::new_document`]) buffers the
//!   trace and cross-validates everything at [`TraceLineParser::finish`] —
//!   the engine behind [`Trace::from_text`] / [`Trace::from_reader`];
//! * **streaming mode** ([`TraceLineParser::new_streaming`]) never stores
//!   the document — only a compact `(process, time)` pair per event for
//!   cross-validation plus O(processes + in-flight messages) working
//!   state: each `e` line yields an [`EventFeed`] that can be pushed
//!   straight into an [`abc_core::monitor::IncrementalChecker`], and every
//!   reference is validated *before* it could panic a downstream graph
//!   builder — which is what makes it safe to expose to untrusted network
//!   clients. Both modes accept exactly the same documents (modulo line
//!   order), so a server verdict and a file re-check never diverge on
//!   validity.
//!
//! Text never accumulates: [`LineAssembler`] splits raw bytes into lines
//! with a hard per-line length cap, so a malicious or broken producer
//! cannot balloon memory by withholding a newline.
//!
//! The parser validates everything the simulator guarantees: counts match,
//! indices are in range, events appear in `seq` order, wake-ups precede
//! receives at each process, and event↔message cross references agree — a
//! parsed trace is as trustworthy as a captured one.
//!
//! # One validation core, two framings
//!
//! The grammar above is a *framing* of a small record language
//! ([`TraceRecord`]): process count, faulty set, optional count
//! declarations, events, messages, `end`. [`TraceLineParser::feed_line`]
//! parses a text line into a record and hands it to
//! [`TraceLineParser::feed_record`], which owns every semantic rule. The
//! binary wire framing ([`crate::binio`]) decodes frames into the same
//! records and feeds them through the same entry point, so the two
//! framings accept exactly the same documents by construction.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::BuildHasherDefault;
use std::io::Read;

use abc_core::ProcessId;

use crate::trace::{Trace, TraceEvent, TraceMessage};

/// Format version written by [`Trace::to_text`] and accepted by
/// [`Trace::from_text`].
pub const TRACE_FORMAT_VERSION: &str = "v1";

/// Default per-line byte cap enforced by [`LineAssembler`] users
/// ([`Trace::from_reader`], the `abc-service` ingestion server). No
/// well-formed trace line comes anywhere near this; a line that does is an
/// attack or corruption and is rejected without being buffered.
pub const DEFAULT_MAX_LINE_LEN: usize = 64 * 1024;

/// A parse/validation error for the trace text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTextError {
    /// 1-based line number the error was detected at (0 for end-of-input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace text: {}", self.message)
        } else {
            write!(f, "trace text, line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceTextError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TraceTextError> {
    Err(TraceTextError {
        line,
        message: message.into(),
    })
}

fn opt_u64(field: &str) -> Result<Option<u64>, String> {
    if field == "-" {
        Ok(None)
    } else {
        field
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("{field:?}: {e}"))
    }
}

fn opt_usize(field: &str) -> Result<Option<usize>, String> {
    if field == "-" {
        Ok(None)
    } else {
        field
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("{field:?}: {e}"))
    }
}

fn flag(field: &str) -> Result<bool, String> {
    match field {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("expected flag 0/1, got {other:?}")),
    }
}

fn fmt_opt<T: fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn at<T>(ln: usize, r: Result<T, String>) -> Result<T, TraceTextError> {
    r.map_err(|message| TraceTextError { line: ln, message })
}

/// Splits raw bytes into text lines with a hard per-line length cap.
///
/// Push-based so it serves both pull sources (files via
/// [`Trace::from_reader`]) and event sources (non-blocking sockets in
/// `abc-service`): feed whatever bytes arrived with [`LineAssembler::push`],
/// then drain completed lines with [`LineAssembler::next_line`]. A line
/// longer than the cap is rejected as soon as the cap is crossed — the
/// oversized tail is never buffered, so a 100 MB "line" costs O(cap)
/// memory, not 100 MB.
#[derive(Debug)]
pub struct LineAssembler {
    cap: usize,
    partial: Vec<u8>,
    ready: VecDeque<String>,
    completed: usize,
    poisoned: bool,
}

impl LineAssembler {
    /// A new assembler enforcing `max_line_len` bytes per line (excluding
    /// the newline itself).
    #[must_use]
    pub fn new(max_line_len: usize) -> LineAssembler {
        LineAssembler {
            cap: max_line_len,
            partial: Vec::new(),
            ready: VecDeque::new(),
            completed: 0,
            poisoned: false,
        }
    }

    fn complete(&mut self, bytes: &[u8]) -> Result<(), TraceTextError> {
        let line = self.completed + 1;
        if bytes.len() > self.cap {
            self.poisoned = true;
            return err(line, format!("line exceeds {} bytes", self.cap));
        }
        let mut s = match std::str::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                self.poisoned = true;
                return err(line, "line is not valid UTF-8");
            }
        };
        if let Some(stripped) = s.strip_suffix('\r') {
            s = stripped;
        }
        self.ready.push_back(s.to_string());
        self.completed += 1;
        Ok(())
    }

    /// Feeds a chunk of raw bytes.
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] (with the 1-based line number) as soon as a line
    /// crosses the length cap or contains invalid UTF-8. After an error the
    /// assembler is poisoned and further pushes keep failing.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), TraceTextError> {
        if self.poisoned {
            return err(self.completed + 1, "line assembler already failed");
        }
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|b| *b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            if self.partial.is_empty() {
                self.complete(head)?;
            } else {
                self.partial.extend_from_slice(head);
                let full = std::mem::take(&mut self.partial);
                self.complete(&full)?;
            }
            rest = tail.get(1..).unwrap_or(&[]);
        }
        if self.partial.len() + rest.len() > self.cap {
            self.poisoned = true;
            return err(
                self.completed + 1,
                format!("line exceeds {} bytes", self.cap),
            );
        }
        self.partial.extend_from_slice(rest);
        Ok(())
    }

    /// Completes a trailing line that was not newline-terminated (call at
    /// end of input; files may omit the final newline).
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] if the trailing bytes are not valid UTF-8.
    pub fn finish(&mut self) -> Result<(), TraceTextError> {
        if !self.partial.is_empty() && !self.poisoned {
            let full = std::mem::take(&mut self.partial);
            self.complete(&full)?;
        }
        Ok(())
    }

    /// Pops the next completed line, if any.
    pub fn next_line(&mut self) -> Option<String> {
        self.ready.pop_front()
    }

    /// Bytes currently buffered for the incomplete trailing line.
    #[must_use]
    pub fn partial_len(&self) -> usize {
        self.partial.len()
    }

    /// Whether any input is buffered: completed lines not yet drained via
    /// [`LineAssembler::next_line`], or partial bytes of an unterminated
    /// line. The `abc-service` protocol switch refuses to enter binary
    /// framing while text is still in flight, via this check.
    #[must_use]
    pub fn has_buffered(&self) -> bool {
        !self.ready.is_empty() || !self.partial.is_empty()
    }
}

/// What a single fed line meant, for callers that act per line (the
/// `abc-service` ingestion path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsedLine {
    /// Comment, blank line, header, or count declaration — nothing to act
    /// on.
    Meta,
    /// The `faulty` line was parsed: process count and faulty set are now
    /// known (see [`TraceLineParser::topology`]) — time to size a monitor.
    Topology,
    /// An event line; in streaming mode the feed is fully resolved and can
    /// be pushed into an incremental checker immediately.
    Event(EventFeed),
    /// A message line was recorded.
    Message {
        /// Whether the message has a receive event (vs. in-flight/dropped).
        delivered: bool,
    },
    /// `end` — the document is complete (declared counts validated).
    End,
}

/// The monitor-facing content of one `e` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventFeed {
    /// A wake-up event: the first event of `process`.
    Init {
        /// Global event sequence number.
        seq: usize,
        /// The waking process.
        process: ProcessId,
    },
    /// A receive event.
    Receive {
        /// Global event sequence number.
        seq: usize,
        /// The receiving process.
        process: ProcessId,
        /// The trace-event index of the sending step. Always `Some` in
        /// streaming mode; in document mode `None` until the triggering
        /// `m` line has been seen (canonical document order resolves all
        /// triggers only at [`TraceLineParser::finish`]).
        send_event: Option<usize>,
    },
}

/// A delivery expectation recorded from a streaming-mode `m` line, waiting
/// for its receive `e` line.
#[derive(Clone, Copy, Debug)]
struct PendingDelivery {
    to: ProcessId,
    send_event: usize,
    recv_event: usize,
    recv_time: u64,
}

/// One semantic record of the trace grammar, independent of framing.
///
/// Text lines parse into records ([`TraceLineParser::feed_line`]) and
/// binary frames decode into records ([`crate::binio`]); both are applied
/// through [`TraceLineParser::feed_record`], which owns every validation
/// rule — so any framing built on this type accepts exactly the documents
/// the text format accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceRecord<'a> {
    /// `processes <n>` — the process count (first record of a document).
    Processes(usize),
    /// `faulty <p>…` — the faulty process indices (second record).
    Faulty(&'a [usize]),
    /// `events <n>` — declared event count (optional, before any body
    /// record).
    DeclaredEvents(usize),
    /// `messages <n>` — declared message count (optional, before any body
    /// record).
    DeclaredMessages(usize),
    /// An `e` record.
    Event(EventRecord),
    /// An `m` record.
    Message(MessageRecord),
    /// `end` — the document is complete.
    End,
}

impl TraceRecord<'_> {
    /// Short grammar-level name, for state-mismatch error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::Processes(_) => "`processes`",
            TraceRecord::Faulty(_) => "`faulty`",
            TraceRecord::DeclaredEvents(_) => "`events` count",
            TraceRecord::DeclaredMessages(_) => "`messages` count",
            TraceRecord::Event(_) => "`e`",
            TraceRecord::Message(_) => "`m`",
            TraceRecord::End => "`end`",
        }
    }
}

/// The fields of one `e` record (see the module grammar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Global sequence number. `None` means implicit — the framing does
    /// not carry it and the parser assigns the next expected value (the
    /// binary framing); `Some` is validated against that value (text).
    pub seq: Option<usize>,
    /// Owning process index.
    pub process: usize,
    /// Occurrence time.
    pub time: u64,
    /// Index of the delivering message record, `None` for wake-ups.
    pub trigger: Option<usize>,
    /// The received-but-not-processed flag.
    pub received_only: bool,
    /// Optional instrumentation label.
    pub label: Option<u64>,
    /// The distinguished-event flag.
    pub distinguished: bool,
}

/// The fields of one `m` record (see the module grammar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Sender process index.
    pub from: usize,
    /// Receiver process index.
    pub to: usize,
    /// Trace-event index of the sending step.
    pub send_event: usize,
    /// Trace-event index of the receive (`None` while in flight/dropped).
    pub recv_event: Option<usize>,
    /// Send time.
    pub send_time: u64,
    /// Receive time (`None` while in flight/dropped).
    pub recv_time: Option<u64>,
}

/// Hasher for the streaming-mode bookkeeping maps, whose keys are small
/// dense event/message indices. The default SipHash costs more than an
/// entire decoded binary event on the ingestion hot path; a multiply-mix
/// is ample here — crafted collisions only slow the offending session's
/// own shard, and per-tick work is bounded upstream.
#[derive(Clone, Copy, Debug, Default)]
struct IndexHasher(u64);

impl std::hash::Hasher for IndexHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        // Fold the multiply's high-bit entropy down into the low bits the
        // table indexes with.
        self.0 ^ (self.0 >> 32)
    }
}

type IndexMap<V> = HashMap<usize, V, BuildHasherDefault<IndexHasher>>;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PState {
    ExpectHeader,
    ExpectProcesses,
    ExpectFaulty,
    Body,
    Done,
}

/// An incremental, per-line parser for the `abc-trace v1` grammar.
///
/// Construct with [`TraceLineParser::new_document`] (buffer and fully
/// cross-validate a whole trace — the engine behind [`Trace::from_text`])
/// or [`TraceLineParser::new_streaming`] (validate-and-forward without
/// storing the document — the `abc-service` ingestion core; see the
/// module docs for the two line orders).
///
/// Feed **every** input line (including comments and blanks) through
/// [`TraceLineParser::feed_line`] so reported line numbers match the
/// source.
#[derive(Debug)]
pub struct TraceLineParser {
    streaming: bool,
    max_processes: Option<usize>,
    state: PState,
    line_no: usize,
    num_processes: usize,
    faulty: Vec<bool>,
    declared_events: Option<usize>,
    declared_messages: Option<usize>,
    seen_body_line: bool,
    events_seen: usize,
    messages_seen: usize,
    last_time: u64,
    has_init: Vec<bool>,
    // Document mode storage (empty in streaming mode).
    events: Vec<TraceEvent>,
    messages: Vec<TraceMessage>,
    // Streaming mode bookkeeping (empty in document mode). `event_meta`
    // keeps one compact `(process, time)` pair per event so `m` lines can
    // be cross-checked against their sending event with exactly the same
    // strictness as document mode — the document text, labels, flags, and
    // message set are still never stored.
    event_meta: Vec<(ProcessId, u64)>,
    /// First event index still held in `event_meta` (streaming mode can
    /// compact the sidecar below a prune horizon via
    /// [`TraceLineParser::forget_events_below`]).
    meta_base: usize,
    pending: IndexMap<PendingDelivery>,
    expected_at: IndexMap<usize>,
}

impl TraceLineParser {
    fn new(streaming: bool) -> TraceLineParser {
        TraceLineParser {
            streaming,
            max_processes: None,
            state: PState::ExpectHeader,
            line_no: 0,
            num_processes: 0,
            faulty: Vec::new(),
            declared_events: None,
            declared_messages: None,
            seen_body_line: false,
            events_seen: 0,
            messages_seen: 0,
            last_time: 0,
            has_init: Vec::new(),
            events: Vec::new(),
            messages: Vec::new(),
            event_meta: Vec::new(),
            meta_base: 0,
            pending: IndexMap::default(),
            expected_at: IndexMap::default(),
        }
    }

    /// A parser that buffers the whole trace and cross-validates it at
    /// [`TraceLineParser::finish`]. Accepts both canonical document order
    /// and streaming order.
    #[must_use]
    pub fn new_document() -> TraceLineParser {
        TraceLineParser::new(false)
    }

    /// A parser that never stores the document: every reference must
    /// resolve backwards (each `e` line's triggering `m` line must precede
    /// it), so each line is fully validated the moment it arrives — with
    /// exactly document mode's strictness, via a compact `(process, time)`
    /// pair per event — while line text, labels, and the message set are
    /// dropped on the spot (working state beyond that sidecar is
    /// O(processes + in-flight messages)). This is the mode network
    /// servers expose to untrusted clients.
    #[must_use]
    pub fn new_streaming() -> TraceLineParser {
        TraceLineParser::new(true)
    }

    /// Rejects documents declaring more than `cap` processes *before*
    /// any per-process state is allocated — servers expose this to
    /// untrusted clients, where a lying `processes` line must not be able
    /// to force a huge allocation.
    #[must_use]
    pub fn with_max_processes(mut self, cap: usize) -> TraceLineParser {
        self.max_processes = Some(cap);
        self
    }

    /// Skips the `abc-trace <version>` header requirement, for framings
    /// that carry the version out of band (the binary wire framing
    /// negotiates its version before the first frame). The first record is
    /// then the process count. Only meaningful for [`TraceRecord`] feeds;
    /// text documents always start with the header line.
    #[must_use]
    pub fn without_header(mut self) -> TraceLineParser {
        if self.state == PState::ExpectHeader {
            self.state = PState::ExpectProcesses;
        }
        self
    }

    /// Process count and faulty flags, once the `faulty` line has been
    /// parsed ([`ParsedLine::Topology`] signalled).
    #[must_use]
    pub fn topology(&self) -> Option<(usize, &[bool])> {
        match self.state {
            PState::ExpectHeader | PState::ExpectProcesses | PState::ExpectFaulty => None,
            PState::Body | PState::Done => Some((self.num_processes, &self.faulty)),
        }
    }

    /// Events parsed so far.
    #[must_use]
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Messages parsed so far.
    #[must_use]
    pub fn messages_seen(&self) -> usize {
        self.messages_seen
    }

    /// Whether `end` has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == PState::Done
    }

    /// Lines fed so far (= the 1-based number of the last fed line).
    #[must_use]
    pub fn lines_fed(&self) -> usize {
        self.line_no
    }

    /// Streaming mode only: compacts the per-event `(process, time)`
    /// sidecar below `event_idx`, so a long-lived connection's parser
    /// memory tracks the caller's prune horizon instead of the document
    /// length. Any later `m` line naming a send event below the horizon is
    /// rejected with a parse error — the bounded-monitoring contract a
    /// server advertises when it enables pruning.
    ///
    /// # Panics
    ///
    /// Panics on a document-mode parser (which stores the whole trace by
    /// design).
    pub fn forget_events_below(&mut self, event_idx: usize) {
        assert!(
            self.streaming,
            "forget_events_below is a streaming-mode operation"
        );
        let cut = event_idx.min(self.events_seen);
        if cut > self.meta_base {
            self.event_meta.drain(..cut - self.meta_base);
            self.meta_base = cut;
        }
    }

    /// Streaming mode: the oldest send event named by a declared but not
    /// yet received message (`None` when no delivery is pending). Callers
    /// pruning a downstream monitor must keep their horizon at or below
    /// this watermark.
    #[must_use]
    pub fn oldest_pending_send(&self) -> Option<usize> {
        self.pending.values().map(|p| p.send_event).min()
    }

    fn scalar(ln: usize, l: &str, key: &str) -> Result<usize, TraceTextError> {
        match l.strip_prefix(key).map(str::trim) {
            Some(v) if !v.is_empty() => match v.parse() {
                Ok(n) => Ok(n),
                Err(e) => err(ln, format!("{key}: {e}")),
            },
            _ => err(ln, format!("expected `{key} <count>`, got {l:?}")),
        }
    }

    /// Feeds one line (without its newline). The line is parsed into a
    /// [`TraceRecord`] and applied through the same validation core as
    /// [`TraceLineParser::feed_record`].
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] carrying the line number on any malformed or
    /// inconsistent line. Errors are fatal: the parser stays in its current
    /// state and subsequent feeds will keep failing on out-of-order input.
    pub fn feed_line(&mut self, raw: &str) -> Result<ParsedLine, TraceTextError> {
        self.line_no += 1;
        let ln = self.line_no;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            return Ok(ParsedLine::Meta);
        }
        match self.state {
            PState::ExpectHeader => {
                match l.strip_prefix("abc-trace ") {
                    Some(TRACE_FORMAT_VERSION) => {}
                    Some(v) => return err(ln, format!("unsupported version {v:?}")),
                    None => return err(ln, "missing `abc-trace <version>` header"),
                }
                self.state = PState::ExpectProcesses;
                Ok(ParsedLine::Meta)
            }
            PState::ExpectProcesses => {
                let n = Self::scalar(ln, l, "processes")?;
                self.apply_processes(ln, n)
            }
            PState::ExpectFaulty => {
                let rest = match l.strip_prefix("faulty") {
                    Some(rest) => rest,
                    None => return err(ln, format!("expected `faulty …`, got {l:?}")),
                };
                let mut indices = Vec::new();
                for field in rest.split_whitespace() {
                    match field.parse() {
                        Ok(p) => indices.push(p),
                        Err(e) => return err(ln, format!("faulty index {field:?}: {e}")),
                    }
                }
                self.apply_faulty(ln, &indices)
            }
            PState::Body => self.feed_body_line(ln, l),
            PState::Done => err(ln, format!("trailing content after `end`: {l:?}")),
        }
    }

    /// Feeds one framing-independent record — the single entry point every
    /// framing funnels into ([`TraceLineParser::feed_line`] after text
    /// parsing, the binary decoder in [`crate::binio`] directly). Each
    /// record counts toward [`TraceLineParser::lines_fed`] and appears as
    /// the `line` of any reported error, so binary callers get 1-based
    /// record numbers for free.
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] on any out-of-order or inconsistent record,
    /// under exactly the rules the text path enforces. Feeding a record to
    /// a parser still expecting the text header fails; construct with
    /// [`TraceLineParser::without_header`] for headerless framings.
    pub fn feed_record(&mut self, rec: TraceRecord<'_>) -> Result<ParsedLine, TraceTextError> {
        self.line_no += 1;
        let ln = self.line_no;
        match self.state {
            PState::ExpectHeader => err(ln, "missing `abc-trace <version>` header"),
            PState::ExpectProcesses => match rec {
                TraceRecord::Processes(n) => self.apply_processes(ln, n),
                other => err(
                    ln,
                    format!("expected `processes <count>`, got {} record", other.kind()),
                ),
            },
            PState::ExpectFaulty => match rec {
                TraceRecord::Faulty(indices) => self.apply_faulty(ln, indices),
                other => err(
                    ln,
                    format!("expected `faulty …`, got {} record", other.kind()),
                ),
            },
            PState::Body => match rec {
                TraceRecord::DeclaredEvents(n) => self.apply_declared(ln, "events", n),
                TraceRecord::DeclaredMessages(n) => self.apply_declared(ln, "messages", n),
                TraceRecord::Event(e) => self.apply_event(ln, &e),
                TraceRecord::Message(m) => self.apply_message(ln, &m),
                TraceRecord::End => self.apply_end(ln),
                other => err(
                    ln,
                    format!("expected an `e`/`m`/`end` record, got {}", other.kind()),
                ),
            },
            PState::Done => err(ln, format!("trailing {} record after `end`", rec.kind())),
        }
    }

    fn feed_body_line(&mut self, ln: usize, l: &str) -> Result<ParsedLine, TraceTextError> {
        if let Some(first) = l.split_whitespace().next() {
            match first {
                "events" | "messages" => {
                    if self.seen_body_line {
                        return err(ln, format!("`{first}` count must precede all e/m lines"));
                    }
                    let n = Self::scalar(ln, l, first)?;
                    return self.apply_declared(ln, first, n);
                }
                "e" => {
                    let rec = Self::parse_event_line(ln, l)?;
                    return self.apply_event(ln, &rec);
                }
                "m" => {
                    let rec = Self::parse_message_line(ln, l)?;
                    return self.apply_message(ln, &rec);
                }
                "end" if l == "end" => {
                    return self.apply_end(ln);
                }
                _ => {}
            }
        }
        err(ln, format!("expected an `e`/`m`/`end` line, got {l:?}"))
    }

    fn apply_processes(&mut self, ln: usize, n: usize) -> Result<ParsedLine, TraceTextError> {
        if let Some(cap) = self.max_processes {
            if n > cap {
                return err(ln, format!("processes {n} exceeds the cap of {cap}"));
            }
        }
        self.num_processes = n;
        self.state = PState::ExpectFaulty;
        Ok(ParsedLine::Meta)
    }

    fn apply_faulty(&mut self, ln: usize, indices: &[usize]) -> Result<ParsedLine, TraceTextError> {
        self.faulty = vec![false; self.num_processes];
        for &p in indices {
            let Some(slot) = self.faulty.get_mut(p) else {
                return err(ln, format!("faulty index {p} out of range"));
            };
            *slot = true;
        }
        self.has_init = vec![false; self.num_processes];
        self.state = PState::Body;
        Ok(ParsedLine::Topology)
    }

    fn apply_declared(
        &mut self,
        ln: usize,
        key: &str,
        n: usize,
    ) -> Result<ParsedLine, TraceTextError> {
        if self.seen_body_line {
            return err(ln, format!("`{key}` count must precede all e/m lines"));
        }
        let slot = if key == "events" {
            &mut self.declared_events
        } else {
            &mut self.declared_messages
        };
        if slot.is_some() {
            return err(ln, format!("duplicate `{key}` count"));
        }
        *slot = Some(n);
        Ok(ParsedLine::Meta)
    }

    fn apply_end(&mut self, ln: usize) -> Result<ParsedLine, TraceTextError> {
        if let Some(n) = self.declared_events {
            if n != self.events_seen {
                return err(ln, format!("declared {n} events, saw {}", self.events_seen));
            }
        }
        if let Some(n) = self.declared_messages {
            if n != self.messages_seen {
                return err(
                    ln,
                    format!("declared {n} messages, saw {}", self.messages_seen),
                );
            }
        }
        if let Some((mi, p)) = self.pending.iter().next() {
            return err(
                ln,
                format!(
                    "message {mi} declares receive event {}, which never arrived",
                    p.recv_event
                ),
            );
        }
        self.state = PState::Done;
        Ok(ParsedLine::End)
    }

    fn parse_event_line(ln: usize, l: &str) -> Result<EventRecord, TraceTextError> {
        let fields: Vec<&str> = l.split_whitespace().collect();
        let &[tag, seq, process, time, trigger, received_only, label, distinguished] =
            fields.as_slice()
        else {
            return err(ln, format!("expected `e` line with 7 fields, got {l:?}"));
        };
        if tag != "e" {
            return err(ln, format!("expected `e` line with 7 fields, got {l:?}"));
        }
        Ok(EventRecord {
            seq: Some(at(
                ln,
                opt_usize(seq).and_then(|v| v.ok_or("seq required".into())),
            )?),
            process: at(
                ln,
                opt_usize(process).and_then(|v| v.ok_or("process required".into())),
            )?,
            time: at(
                ln,
                opt_u64(time).and_then(|v| v.ok_or("time required".into())),
            )?,
            trigger: at(ln, opt_usize(trigger))?,
            received_only: at(ln, flag(received_only))?,
            label: at(ln, opt_u64(label))?,
            distinguished: at(ln, flag(distinguished))?,
        })
    }

    fn parse_message_line(ln: usize, l: &str) -> Result<MessageRecord, TraceTextError> {
        let fields: Vec<&str> = l.split_whitespace().collect();
        let &[tag, from, to, send_event, recv_event, send_time, recv_time] = fields.as_slice()
        else {
            return err(ln, format!("expected `m` line with 6 fields, got {l:?}"));
        };
        if tag != "m" {
            return err(ln, format!("expected `m` line with 6 fields, got {l:?}"));
        }
        Ok(MessageRecord {
            from: at(
                ln,
                opt_usize(from).and_then(|v| v.ok_or("from required".into())),
            )?,
            to: at(
                ln,
                opt_usize(to).and_then(|v| v.ok_or("to required".into())),
            )?,
            send_event: at(
                ln,
                opt_usize(send_event).and_then(|v| v.ok_or("send_event required".into())),
            )?,
            recv_event: at(ln, opt_usize(recv_event))?,
            send_time: at(
                ln,
                opt_u64(send_time).and_then(|v| v.ok_or("send_time required".into())),
            )?,
            recv_time: at(ln, opt_u64(recv_time))?,
        })
    }

    fn apply_event(&mut self, ln: usize, rec: &EventRecord) -> Result<ParsedLine, TraceTextError> {
        self.seen_body_line = true;
        let seq = self.events_seen;
        if let Some(s) = rec.seq {
            if s != seq {
                return err(ln, format!("event seq {s}, expected {seq}"));
            }
        }
        if let Some(n) = self.declared_events {
            if seq >= n {
                return err(ln, format!("more than the declared {n} e lines"));
            }
        }
        if rec.process >= self.num_processes {
            return err(ln, format!("process {} out of range", rec.process));
        }
        let process = ProcessId(rec.process);
        let time = rec.time;
        let trigger = rec.trigger;
        let (received_only, label, distinguished) =
            (rec.received_only, rec.label, rec.distinguished);
        if self.events_seen > 0 && time < self.last_time {
            return err(ln, "event times must be non-decreasing");
        }
        if self.streaming {
            if let Some(&want) = self.expected_at.get(&seq) {
                if trigger != Some(want) {
                    return err(
                        ln,
                        format!(
                            "event {seq} was declared the receive of message {want}, \
                             but its trigger is {}",
                            fmt_opt(trigger)
                        ),
                    );
                }
            }
        }
        let feed = match trigger {
            None => {
                // `process` was range-checked above, so `get_mut` always
                // hits; the indirection keeps the hot path panic-free.
                let Some(init) = self.has_init.get_mut(process.0) else {
                    return err(ln, format!("process {process} out of range"));
                };
                if *init {
                    return err(ln, format!("{process} has more than one wake-up event"));
                }
                *init = true;
                EventFeed::Init { seq, process }
            }
            Some(mi) => {
                if !self.has_init.get(process.0).copied().unwrap_or(false) {
                    return err(ln, format!("receive at {process} before its wake-up"));
                }
                if let Some(n) = self.declared_messages {
                    if mi >= n {
                        return err(ln, format!("trigger {mi} out of range"));
                    }
                }
                let send_event = if self.streaming {
                    let p = match self.pending.remove(&mi) {
                        Some(p) => p,
                        None => {
                            return err(
                                ln,
                                format!(
                                    "trigger {mi} does not name a prior undelivered `m` line \
                                     (streaming order requires each message before its receive)"
                                ),
                            )
                        }
                    };
                    self.expected_at.remove(&p.recv_event);
                    if p.recv_event != seq {
                        return err(
                            ln,
                            format!(
                                "message {mi} declares receive event {}, consumed at {seq}",
                                p.recv_event
                            ),
                        );
                    }
                    if p.to != process {
                        return err(
                            ln,
                            format!("message {mi} addressed to {}, received at {process}", p.to),
                        );
                    }
                    if p.recv_time != time {
                        return err(
                            ln,
                            format!(
                                "message {mi} recv_time {} != event time {time}",
                                p.recv_time
                            ),
                        );
                    }
                    Some(p.send_event)
                } else {
                    // Document mode: resolvable only if the `m` line already
                    // appeared (streaming order); canonical order resolves
                    // at finish().
                    self.messages.get(mi).map(|m| m.send_event)
                };
                EventFeed::Receive {
                    seq,
                    process,
                    send_event,
                }
            }
        };
        self.last_time = time;
        self.events_seen += 1;
        if self.streaming {
            self.event_meta.push((process, time));
        } else {
            self.events.push(TraceEvent {
                seq,
                process,
                time,
                trigger,
                received_only,
                label,
                distinguished,
            });
        }
        Ok(ParsedLine::Event(feed))
    }

    fn apply_message(
        &mut self,
        ln: usize,
        rec: &MessageRecord,
    ) -> Result<ParsedLine, TraceTextError> {
        self.seen_body_line = true;
        let index = self.messages_seen;
        if let Some(n) = self.declared_messages {
            if index >= n {
                return err(ln, format!("more than the declared {n} m lines"));
            }
        }
        let (from, to) = (rec.from, rec.to);
        if from >= self.num_processes || to >= self.num_processes {
            return err(
                ln,
                format!("endpoint out of range in message {index} (from p{from} to p{to})"),
            );
        }
        let send_event = rec.send_event;
        if send_event >= self.events_seen {
            return err(
                ln,
                format!(
                    "send_event {send_event} not yet seen (an `m` line must follow \
                     its sending `e` line)"
                ),
            );
        }
        let (recv_event, send_time, recv_time) = (rec.recv_event, rec.send_time, rec.recv_time);
        if recv_event.is_some() != recv_time.is_some() {
            return err(ln, "recv_event and recv_time must both be set or both `-`");
        }
        if let (Some(r), Some(rt)) = (recv_event, recv_time) {
            if r <= send_event {
                return err(
                    ln,
                    format!("message received (event {r}) no later than sent (event {send_event})"),
                );
            }
            if rt < send_time {
                return err(
                    ln,
                    format!("recv_time {rt} earlier than send_time {send_time}"),
                );
            }
            if let Some(n) = self.declared_events {
                if r >= n {
                    return err(ln, format!("recv_event {r} out of range"));
                }
            }
            if self.streaming {
                if r < self.events_seen {
                    return err(
                        ln,
                        format!(
                            "recv_event {r} already passed without naming this message \
                             (streaming order requires each message before its receive)"
                        ),
                    );
                }
                self.pending.insert(
                    index,
                    PendingDelivery {
                        to: ProcessId(to),
                        send_event,
                        recv_event: r,
                        recv_time: rt,
                    },
                );
                if self.expected_at.insert(r, index).is_some() {
                    return err(ln, format!("two messages declare receive event {r}"));
                }
            }
        }
        // Both modes check the sender linkage immediately — the sending
        // event is always behind us (streaming mode via the compact
        // per-event metadata), so wire and file paths accept exactly the
        // same documents.
        let (sender_process, sender_time) = if self.streaming {
            if send_event < self.meta_base {
                return err(
                    ln,
                    format!(
                        "send_event {send_event} is older than the prune horizon (events \
                         before {} were compacted)",
                        self.meta_base
                    ),
                );
            }
            // In range: `send_event < events_seen` was checked on entry and
            // `>= meta_base` just above; `get` keeps the path panic-free.
            let Some(&meta) = self.event_meta.get(send_event - self.meta_base) else {
                return err(ln, format!("send_event {send_event} not yet seen"));
            };
            meta
        } else {
            let Some(sender) = self.events.get(send_event) else {
                return err(ln, format!("send_event {send_event} not yet seen"));
            };
            (sender.process, sender.time)
        };
        if sender_process.0 != from {
            return err(
                ln,
                format!(
                    "message {index} sent from p{from}, but event {send_event} is at \
                     {sender_process}"
                ),
            );
        }
        if sender_time != send_time {
            return err(
                ln,
                format!(
                    "message {index} send_time {send_time} != sending event time {sender_time}"
                ),
            );
        }
        if !self.streaming {
            self.messages.push(TraceMessage {
                from: ProcessId(from),
                to: ProcessId(to),
                send_event,
                recv_event,
                send_time,
                recv_time,
            });
        }
        self.messages_seen += 1;
        Ok(ParsedLine::Message {
            delivered: recv_event.is_some(),
        })
    }

    /// Completes a document-mode parse: verifies `end` was reached, runs
    /// the full event↔message cross validation, and returns the trace.
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] on truncated input or any cross-reference
    /// inconsistency. Streaming-mode parsers have nothing to finish (they
    /// never store the document) and return an error.
    pub fn finish(self) -> Result<Trace, TraceTextError> {
        if self.streaming {
            return err(0, "finish() is for document-mode parsers");
        }
        match self.state {
            PState::Done => {}
            PState::ExpectHeader => return err(0, "unexpected end of input, expected header"),
            PState::ExpectProcesses => {
                return err(0, "unexpected end of input, expected processes")
            }
            PState::ExpectFaulty => return err(0, "unexpected end of input, expected faulty"),
            PState::Body => return err(0, "unexpected end of input, expected `end`"),
        }
        let (events, messages) = (self.events, self.messages);
        // Cross validation: the event/message references must describe one
        // consistent execution.
        for (idx, ev) in events.iter().enumerate() {
            if let Some(mi) = ev.trigger {
                let m = match messages.get(mi) {
                    Some(m) => m,
                    None => return err(0, format!("event {idx} trigger {mi} out of range")),
                };
                if m.recv_event != Some(idx) {
                    return err(
                        0,
                        format!(
                            "event {idx} claims trigger m{mi}, but m{mi} recv_event is {:?}",
                            m.recv_event
                        ),
                    );
                }
                if m.to != ev.process {
                    return err(
                        0,
                        format!("m{mi} addressed to {}, received at {}", m.to, ev.process),
                    );
                }
            }
        }
        for (mi, m) in messages.iter().enumerate() {
            if let (Some(r), Some(rt)) = (m.recv_event, m.recv_time) {
                let recv = match events.get(r) {
                    Some(recv) => recv,
                    None => return err(0, format!("m{mi} recv_event {r} out of range")),
                };
                if recv.trigger != Some(mi) {
                    return err(
                        0,
                        format!(
                            "m{mi} claims recv_event {r}, but event {r} has trigger {:?}",
                            recv.trigger
                        ),
                    );
                }
                if recv.time != rt {
                    return err(
                        0,
                        format!("m{mi} recv_time {rt} != receiving event time {}", recv.time),
                    );
                }
            }
        }
        Ok(Trace {
            num_processes: self.num_processes,
            events,
            messages,
            faulty: self.faulty,
        })
    }
}

impl Trace {
    /// Serializes the trace into the canonical document order (see the
    /// [`crate::textio`] module docs for the grammar): all `e` lines in
    /// chronological order, then all `m` lines in send order.
    #[must_use]
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(32 * (self.events.len() + self.messages.len()) + 64);
        self.write_header(&mut out);
        for ev in &self.events {
            Self::write_event_line(&mut out, ev, ev.trigger);
        }
        for m in &self.messages {
            Self::write_message_line(&mut out, m);
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Serializes the trace in *streaming* order: each delivered message's
    /// `m` line immediately precedes its receive `e` line (message indices
    /// renumbered to delivery order; undelivered messages trail before
    /// `end`). Every line is resolvable the moment it arrives, so the
    /// output can be fed to a [`TraceLineParser::new_streaming`] parser —
    /// and hence to the `abc-service` TCP ingestion protocol — line by
    /// line with O(in-flight) memory.
    #[must_use]
    pub fn to_stream_text(&self) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(40 * (self.events.len() + self.messages.len()) + 64);
        self.write_header(&mut out);
        // Delivered messages take indices in delivery order; undelivered
        // ones follow, in send order.
        let mut new_index = vec![usize::MAX; self.messages.len()];
        let mut next = 0usize;
        for ev in &self.events {
            if let Some(slot) = ev.trigger.and_then(|mi| new_index.get_mut(mi)) {
                *slot = next;
                next += 1;
            }
        }
        for (mi, m) in self.messages.iter().enumerate() {
            if m.recv_event.is_none() {
                if let Some(slot) = new_index.get_mut(mi) {
                    *slot = next;
                    next += 1;
                }
            }
        }
        for ev in &self.events {
            if let Some((m, renumbered)) = ev
                .trigger
                .and_then(|mi| Some((self.messages.get(mi)?, new_index.get(mi).copied()?)))
            {
                Self::write_message_line(&mut out, m);
                Self::write_event_line(&mut out, ev, Some(renumbered));
            } else {
                Self::write_event_line(&mut out, ev, None);
            }
        }
        for m in &self.messages {
            if m.recv_event.is_none() {
                Self::write_message_line(&mut out, m);
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    fn write_header(&self, out: &mut String) {
        use fmt::Write;
        let _ = writeln!(out, "abc-trace {TRACE_FORMAT_VERSION}");
        let _ = writeln!(out, "processes {}", self.num_processes);
        let mut faulty_line = String::from("faulty");
        for (p, f) in self.faulty.iter().enumerate() {
            if *f {
                faulty_line.push(' ');
                faulty_line.push_str(&p.to_string());
            }
        }
        let _ = writeln!(out, "{faulty_line}");
        let _ = writeln!(out, "events {}", self.events.len());
        let _ = writeln!(out, "messages {}", self.messages.len());
    }

    fn write_event_line(out: &mut String, ev: &TraceEvent, trigger: Option<usize>) {
        use fmt::Write;
        let _ = writeln!(
            out,
            "e {} {} {} {} {} {} {}",
            ev.seq,
            ev.process.0,
            ev.time,
            fmt_opt(trigger),
            u8::from(ev.received_only),
            fmt_opt(ev.label),
            u8::from(ev.distinguished),
        );
    }

    fn write_message_line(out: &mut String, m: &TraceMessage) {
        use fmt::Write;
        let _ = writeln!(
            out,
            "m {} {} {} {} {} {}",
            m.from.0,
            m.to.0,
            m.send_event,
            fmt_opt(m.recv_event),
            m.send_time,
            fmt_opt(m.recv_time),
        );
    }

    /// Parses and validates a trace from the text format (either line
    /// order; see the module docs).
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] with the offending line on malformed input, count
    /// mismatches, out-of-range indices, or inconsistent event↔message
    /// cross references.
    pub fn from_text(text: &str) -> Result<Trace, TraceTextError> {
        let mut parser = TraceLineParser::new_document();
        for line in text.lines() {
            parser.feed_line(line)?;
        }
        parser.finish()
    }

    /// Parses and validates a trace from a byte stream, line by line, with
    /// a hard per-line length cap: the input text is never accumulated (a
    /// 100 MB line is rejected after at most `max_line_len` buffered
    /// bytes). This is how the CLI reads trace files.
    ///
    /// # Errors
    ///
    /// [`TraceTextError`] as for [`Trace::from_text`]; I/O errors are
    /// reported with line 0.
    pub fn from_reader(mut r: impl Read, max_line_len: usize) -> Result<Trace, TraceTextError> {
        let mut assembler = LineAssembler::new(max_line_len);
        let mut parser = TraceLineParser::new_document();
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return err(0, format!("read error: {e}")),
            };
            assembler.push(buf.get(..n).unwrap_or(&[]))?;
            while let Some(line) = assembler.next_line() {
                parser.feed_line(&line)?;
            }
        }
        assembler.finish()?;
        while let Some(line) = assembler.next_line() {
            parser.feed_line(&line)?;
        }
        parser.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{BandDelay, Lossy};
    use crate::engine::{RunLimits, Simulation};
    use crate::process::{Context, Process};

    struct Gossip {
        remaining: u32,
    }
    impl Process<u32> for Gossip {
        fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, m + 1);
                ctx.set_label(u64::from(*m));
            }
        }
    }

    fn sample_trace() -> Trace {
        let mut lossy = Lossy::new(BandDelay::new(1, 7, 13));
        lossy.drop_link(ProcessId(0), ProcessId(2));
        let mut sim = Simulation::new(lossy);
        sim.add_process(Gossip { remaining: 15 });
        sim.add_faulty_process(Gossip { remaining: 15 });
        sim.add_process(Gossip { remaining: 15 });
        sim.run(RunLimits {
            max_events: 60,
            max_time: u64::MAX,
        });
        sim.trace().clone()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed.num_processes(), trace.num_processes());
        assert_eq!(parsed.events(), trace.events());
        assert_eq!(parsed.messages(), trace.messages());
        for p in 0..trace.num_processes() {
            assert_eq!(
                parsed.is_faulty(ProcessId(p)),
                trace.is_faulty(ProcessId(p))
            );
        }
        // Second serialization is byte-identical (canonical form).
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let trace = sample_trace();
        let mut text = String::from("# captured by test\n\n");
        text.push_str(&trace.to_text());
        text.push_str("\n# trailing comment\n");
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed.events(), trace.events());
    }

    #[test]
    fn parser_rejects_corrupted_input() {
        let text = sample_trace().to_text();
        // Version mismatch.
        assert!(
            Trace::from_text(&text.replace("abc-trace v1", "abc-trace v9"))
                .unwrap_err()
                .to_string()
                .contains("version")
        );
        // Truncated: drop the last two lines (one m line + end).
        let truncated: Vec<&str> = text.lines().collect();
        let truncated = truncated[..truncated.len() - 2].join("\n");
        assert!(Trace::from_text(&truncated).is_err());
        // Cross-reference corruption: retarget a delivered message.
        let broken = text.replacen("m 0 1", "m 0 2", 1);
        if broken != text {
            assert!(Trace::from_text(&broken).is_err());
        }
        // Count corruption.
        let broken = text.replacen("events ", "events 9", 1);
        assert!(Trace::from_text(&broken).is_err());
        // Trailing garbage after `end`.
        let broken = format!("{text}e 99 0 0 - 0 - 0\n");
        assert!(Trace::from_text(&broken).is_err());
    }

    #[test]
    fn parser_rejects_wakeup_order_violations() {
        // A receive before the process's wake-up used to slip through
        // parsing and panic the graph builder downstream; now it is a
        // parse error in both modes.
        let text = "abc-trace v1\nprocesses 2\nfaulty\nevents 2\nmessages 1\n\
                    e 0 0 0 - 0 - 0\ne 1 1 3 0 0 - 0\nm 0 1 0 1 0 3\nend\n";
        let e = Trace::from_text(text).unwrap_err();
        assert!(e.message.contains("before its wake-up"), "{e}");
        // Two wake-ups at one process.
        let text = "abc-trace v1\nprocesses 1\nfaulty\nevents 2\nmessages 0\n\
                    e 0 0 0 - 0 - 0\ne 1 0 3 - 0 - 0\nend\n";
        let e = Trace::from_text(text).unwrap_err();
        assert!(e.message.contains("more than one wake-up"), "{e}");
    }

    #[test]
    fn parsed_traces_check_like_captured_ones() {
        use abc_core::{check, Xi};
        let trace = sample_trace();
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        let (g0, g1) = (trace.to_execution_graph(), parsed.to_execution_graph());
        assert_eq!(g0, g1);
        let xi = Xi::from_integer(3);
        assert_eq!(
            check::is_admissible(&g0, &xi).unwrap(),
            check::is_admissible(&g1, &xi).unwrap()
        );
        let mon = parsed.replay_into_monitor(&xi).unwrap();
        assert_eq!(mon.is_admissible(), check::is_admissible(&g1, &xi).unwrap());
    }

    #[test]
    fn stream_text_parses_to_the_same_execution() {
        use abc_core::{check, Xi};
        let trace = sample_trace();
        let stream = trace.to_stream_text();
        // Document-mode parse of streaming order: same execution graph
        // (messages are permuted to delivery order, which the graph
        // conversion normalizes away).
        let parsed = Trace::from_text(&stream).unwrap();
        assert_eq!(parsed.events().len(), trace.events().len());
        assert_eq!(parsed.messages().len(), trace.messages().len());
        assert_eq!(parsed.to_execution_graph(), trace.to_execution_graph());
        let xi = Xi::from_integer(2);
        assert_eq!(
            check::is_admissible(&parsed.to_execution_graph(), &xi).unwrap(),
            check::is_admissible(&trace.to_execution_graph(), &xi).unwrap()
        );
    }

    #[test]
    fn streaming_parser_feeds_a_monitor_line_by_line() {
        use abc_core::monitor::IncrementalChecker;
        use abc_core::{EventId, Xi};
        let trace = sample_trace();
        let xi = Xi::from_integer(2);
        let mut parser = TraceLineParser::new_streaming();
        let mut mon: Option<IncrementalChecker> = None;
        for line in trace.to_stream_text().lines() {
            match parser.feed_line(line).unwrap() {
                ParsedLine::Topology => {
                    let (n, faulty) = parser.topology().unwrap();
                    let mut m = IncrementalChecker::new(n, &xi).unwrap();
                    for (p, f) in faulty.iter().enumerate() {
                        if *f {
                            m.mark_faulty(ProcessId(p));
                        }
                    }
                    mon = Some(m);
                }
                ParsedLine::Event(EventFeed::Init { process, .. }) => {
                    mon.as_mut().unwrap().append_init(process);
                }
                ParsedLine::Event(EventFeed::Receive {
                    process,
                    send_event,
                    ..
                }) => {
                    mon.as_mut()
                        .unwrap()
                        .append_send(EventId(send_event.unwrap()), process);
                }
                ParsedLine::Meta | ParsedLine::Message { .. } | ParsedLine::End => {}
            }
        }
        assert!(parser.is_done());
        assert_eq!(parser.events_seen(), trace.events().len());
        let mon = mon.unwrap();
        let offline = trace.replay_into_monitor(&xi).unwrap();
        assert_eq!(mon.graph(), offline.graph());
        assert_eq!(mon.is_admissible(), offline.is_admissible());
    }

    #[test]
    fn streaming_parser_has_no_document_memory() {
        // In streaming order the pending-delivery map tracks only in-flight
        // messages; the document itself is never stored.
        let trace = sample_trace();
        let mut parser = TraceLineParser::new_streaming();
        let mut max_pending = 0usize;
        for line in trace.to_stream_text().lines() {
            parser.feed_line(line).unwrap();
            max_pending = max_pending.max(parser.pending.len());
        }
        assert!(parser.is_done());
        assert!(parser.events.is_empty() && parser.messages.is_empty());
        // In to_stream_text order every delivered message immediately
        // precedes its receive, so at most one delivery is ever pending.
        assert!(max_pending <= 1, "pending grew to {max_pending}");
    }

    #[test]
    fn streaming_and_document_modes_reject_the_same_corruptions() {
        // A lying sender linkage (wrong `from`, wrong send_time) must be
        // rejected by BOTH modes — otherwise a network server would accept
        // bytes that an offline file re-check rejects.
        let stream = sample_trace().to_stream_text();
        let m_line = stream
            .lines()
            .find(|l| l.starts_with("m "))
            .expect("stream has messages")
            .to_string();
        let fields: Vec<&str> = m_line.split_whitespace().collect();
        let wrong_from = format!(
            "m {} {} {} {} {} {}",
            (fields[1].parse::<usize>().unwrap() + 1) % 3,
            fields[2],
            fields[3],
            fields[4],
            fields[5],
            fields[6]
        );
        let wrong_time = format!(
            "m {} {} {} {} {} {}",
            fields[1],
            fields[2],
            fields[3],
            fields[4],
            fields[5].parse::<u64>().unwrap() + 1_000,
            fields[6]
        );
        for corrupted in [wrong_from, wrong_time] {
            let text = stream.replacen(&m_line, &corrupted, 1);
            assert_ne!(text, stream);
            assert!(Trace::from_text(&text).is_err(), "document mode accepts");
            let mut parser = TraceLineParser::new_streaming();
            let streaming_rejects = text.lines().any(|l| parser.feed_line(l).is_err());
            assert!(streaming_rejects, "streaming mode accepts: {corrupted}");
        }
    }

    #[test]
    fn streaming_parser_rejects_document_order() {
        // Canonical document order defers m lines to the end; a streaming
        // parser must reject the first unresolved trigger, not buffer.
        let text = sample_trace().to_text();
        let mut parser = TraceLineParser::new_streaming();
        let mut failed = false;
        for line in text.lines() {
            if parser.feed_line(line).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "document order must not stream-parse");
    }

    #[test]
    fn line_assembler_caps_malicious_lines_early() {
        // A "100 MB line" arrives in chunks and must be rejected as soon
        // as the cap is crossed — long before 100 MB is buffered.
        let cap = 4 * 1024;
        let mut asm = LineAssembler::new(cap);
        let chunk = vec![b'a'; 1024];
        let mut pushed = 0usize;
        let mut failed_at = None;
        for _ in 0..(100 * 1024) {
            pushed += chunk.len();
            if let Err(e) = asm.push(&chunk) {
                failed_at = Some((pushed, e));
                break;
            }
        }
        let (pushed, e) = failed_at.expect("cap never tripped");
        assert!(e.message.contains("exceeds"), "{e}");
        assert!(
            pushed <= 2 * cap,
            "cap tripped only after {pushed} bytes (cap {cap})"
        );
        assert!(asm.partial_len() <= cap);
        // And the error is sticky.
        assert!(asm.push(b"x\n").is_err());
    }

    #[test]
    fn from_reader_rejects_a_100mb_line_early() {
        /// Yields `total` bytes of 'a' with no newline, counting reads.
        struct LongLine {
            total: usize,
            served: usize,
        }
        impl Read for LongLine {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = buf.len().min(self.total - self.served);
                buf[..n].fill(b'a');
                self.served += n;
                Ok(n)
            }
        }
        let mut src = LongLine {
            total: 100 * 1024 * 1024,
            served: 0,
        };
        let e = Trace::from_reader(&mut src, DEFAULT_MAX_LINE_LEN).unwrap_err();
        assert!(e.message.contains("exceeds"), "{e}");
        // Rejected early: we consumed only O(cap), not the full 100 MB.
        assert!(
            src.served <= 4 * DEFAULT_MAX_LINE_LEN,
            "consumed {} bytes before rejecting",
            src.served
        );
    }

    #[test]
    fn from_reader_matches_from_text() {
        let trace = sample_trace();
        let text = trace.to_text();
        let parsed = Trace::from_reader(text.as_bytes(), DEFAULT_MAX_LINE_LEN).unwrap();
        assert_eq!(parsed.events(), trace.events());
        assert_eq!(parsed.messages(), trace.messages());
        // A file missing its final newline still parses.
        let parsed = Trace::from_reader(text.trim_end().as_bytes(), DEFAULT_MAX_LINE_LEN).unwrap();
        assert_eq!(parsed.events(), trace.events());
    }

    #[test]
    fn counts_are_optional_declarations() {
        // A live producer may omit the events/messages counts entirely.
        let trace = sample_trace();
        let text: String = trace
            .to_text()
            .lines()
            .filter(|l| !l.starts_with("events ") && !l.starts_with("messages "))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed.events(), trace.events());
        // But when declared, they must match.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.insert(3, "events 9999".to_string());
        assert!(Trace::from_text(&lines.join("\n")).is_err());
    }
}
