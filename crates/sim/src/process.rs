//! Process behaviors and the step context.

use abc_core::ProcessId;

/// A message-driven process: a state machine whose steps are triggered by
/// single incoming messages (the paper's Section 2 model).
///
/// Correct algorithm processes and Byzantine adversaries implement the same
/// trait — Byzantine behavior is "an arbitrary state machine", which is
/// exactly an arbitrary implementation. Mark adversaries faulty via
/// [`crate::Simulation::add_faulty_process`] so their messages are dropped
/// from the ABC synchrony condition (Section 2's message dropping).
///
/// `Send` is a supertrait: the engine's parallel stepper
/// ([`crate::Simulation::set_sim_workers`]) moves each process to a worker
/// thread for the duration of a same-timestamp batch. Processes own their
/// state and never share it (the paper's model has no shared memory), so
/// in practice every state machine is `Send` already.
pub trait Process<M>: std::any::Any + Send {
    /// The wake-up step (triggered by the external wake-up message). Runs
    /// before any message from another process is processed.
    fn on_init(&mut self, ctx: &mut Context<'_, M>);

    /// One atomic receive + compute + send step.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: &M);

    /// Whether the process has crashed (stopped processing). Crashed
    /// processes still *receive* messages; the trace marks those events
    /// receive-only. Defaults to `false`.
    fn has_crashed(&self) -> bool {
        false
    }
}

/// The capabilities available to a process during a step: identity, the
/// current (zero-time) step's occurrence time, sending, and trace
/// instrumentation.
pub struct Context<'a, M> {
    pub(crate) me: ProcessId,
    pub(crate) now: u64,
    pub(crate) num_processes: usize,
    pub(crate) outbox: &'a mut Vec<(ProcessId, M)>,
    pub(crate) label: &'a mut Option<u64>,
    pub(crate) distinguished: &'a mut bool,
}

impl<M: Clone> Context<'_, M> {
    /// The identity of the stepping process.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The real time of this (zero-duration) step.
    ///
    /// Note: algorithms in the ABC model are time-free and must not base
    /// decisions on this value; it exists for instrumentation and for
    /// implementing *other* models' algorithms (e.g. timeout-based ones)
    /// for comparison experiments.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of processes in the system.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// Sends `msg` to `to` (which may be `self.me()`; the paper's
    /// Algorithm 1 sends to itself).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends `msg` to every process, including the sender (the paper's
    /// "send to all" convention).
    pub fn broadcast(&mut self, msg: M) {
        for p in 0..self.num_processes {
            self.outbox.push((ProcessId(p), msg.clone()));
        }
    }

    /// Attaches a numeric label to this step's trace event (used e.g. to
    /// record clock values for precision measurements).
    pub fn set_label(&mut self, value: u64) {
        *self.label = Some(value);
    }

    /// Marks this step as a *distinguished event* for the bounded-progress
    /// condition (Definition 7).
    pub fn mark_distinguished(&mut self) {
        *self.distinguished = true;
    }
}

/// Wraps a behavior so the process crashes (stops processing) after a given
/// number of completed steps. Step 0 is `on_init`; `CrashAt::new(b, 0)`
/// crashes before doing anything.
///
/// Crashed processes still *receive* messages (the network controls
/// reception), matching the paper's receive/processing split — the events
/// appear in the trace, the process just never acts again.
pub struct CrashAt<P> {
    inner: P,
    crash_after_steps: usize,
    steps: usize,
}

impl<P> CrashAt<P> {
    /// Crash after `steps` completed steps.
    #[must_use]
    pub fn new(inner: P, steps: usize) -> CrashAt<P> {
        CrashAt {
            inner,
            crash_after_steps: steps,
            steps: 0,
        }
    }

    /// Whether the crash point has been reached.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.steps >= self.crash_after_steps
    }

    /// Access the wrapped behavior (e.g. to read final state).
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<M: 'static, P: Process<M>> Process<M> for CrashAt<P> {
    fn on_init(&mut self, ctx: &mut Context<'_, M>) {
        if self.crashed() {
            return;
        }
        self.steps += 1;
        self.inner.on_init(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: &M) {
        if self.crashed() {
            return;
        }
        self.steps += 1;
        self.inner.on_message(ctx, from, msg);
    }

    fn has_crashed(&self) -> bool {
        self.crashed()
    }
}

/// A process that never sends anything (crash-from-start / mute Byzantine
/// behavior).
#[derive(Clone, Copy, Debug, Default)]
pub struct Mute;

impl<M: 'static> Process<M> for Mute {
    fn on_init(&mut self, _ctx: &mut Context<'_, M>) {}
    fn on_message(&mut self, _ctx: &mut Context<'_, M>, _from: ProcessId, _msg: &M) {}
}
