//! Space–time traces of simulated executions and their conversion into
//! execution graphs.

use abc_core::check::CheckError;
use abc_core::graph::ExecutionGraph;
use abc_core::monitor::IncrementalChecker;
use abc_core::timed::TimedGraph;
use abc_core::{EventId, ProcessId, Xi};
use abc_rational::Ratio;

/// One receive event (plus its zero-time computing step) in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global step index (creation order; ties in time are ordered by this).
    pub seq: usize,
    /// The process at which the event occurred.
    pub process: ProcessId,
    /// Occurrence time.
    pub time: u64,
    /// Index of the triggering trace message, or `None` for wake-up events.
    pub trigger: Option<usize>,
    /// Whether the owning process had already crashed (the message was
    /// received but not processed — the paper's receive/processing split).
    pub received_only: bool,
    /// Optional instrumentation label set by the algorithm (e.g. the clock
    /// value after the step).
    pub label: Option<u64>,
    /// Whether the algorithm marked this step as a distinguished event
    /// (Definition 7).
    pub distinguished: bool,
}

/// One message in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMessage {
    /// Sender process.
    pub from: ProcessId,
    /// Receiver process.
    pub to: ProcessId,
    /// Trace-event index of the sending step.
    pub send_event: usize,
    /// Trace-event index of the receive event (`None` while in flight or
    /// dropped).
    pub recv_event: Option<usize>,
    /// Send time.
    pub send_time: u64,
    /// Receive time (`None` while in flight or dropped).
    pub recv_time: Option<u64>,
}

/// A complete space–time trace of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub(crate) num_processes: usize,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) messages: Vec<TraceMessage>,
    pub(crate) faulty: Vec<bool>,
}

impl Trace {
    /// Number of processes.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// All events, in global chronological (= creation) order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All messages, in send order.
    #[must_use]
    pub fn messages(&self) -> &[TraceMessage] {
        &self.messages
    }

    /// Whether `p` was registered as faulty.
    #[must_use]
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.faulty[p.0]
    }

    /// Converts the trace into an execution graph (Definition 1), dropping
    /// in-flight/dropped messages (only completed receive events are
    /// nodes). Faulty processes are marked so their messages are exempt
    /// from the ABC condition.
    ///
    /// Returns the graph; the mapping from trace events to graph events is
    /// the identity on indices restricted to completed events, recoverable
    /// via [`Trace::to_execution_graph_with_map`].
    #[must_use]
    pub fn to_execution_graph(&self) -> ExecutionGraph {
        self.to_execution_graph_with_map().0
    }

    /// Like [`Trace::to_execution_graph`], also returning
    /// `map[trace_event_index] = Some(graph_event_id)`.
    #[must_use]
    pub fn to_execution_graph_with_map(&self) -> (ExecutionGraph, Vec<Option<EventId>>) {
        let mut b = ExecutionGraph::builder(self.num_processes);
        let mut map: Vec<Option<EventId>> = vec![None; self.events.len()];
        for (idx, ev) in self.events.iter().enumerate() {
            match ev.trigger {
                None => {
                    map[idx] = Some(b.init(ev.process));
                }
                Some(mi) => {
                    let msg = &self.messages[mi];
                    let send_graph_event = map[msg.send_event]
                        .expect("sender event precedes receive event chronologically");
                    let (_, recv) = b.send(send_graph_event, ev.process);
                    map[idx] = Some(recv);
                }
            }
        }
        for (p, faulty) in self.faulty.iter().enumerate() {
            if *faulty {
                b.mark_faulty(ProcessId(p));
            }
        }
        (b.finish(), map)
    }

    /// Streams the trace event by event into a fresh
    /// [`IncrementalChecker`] for `Ξ = xi`, appending to the execution
    /// graph incrementally (no per-step rebuild). The resulting monitor's
    /// graph equals [`Trace::to_execution_graph`], and its verdict equals
    /// the batch checker's — this is the offline counterpart of attaching
    /// the monitor to a live [`crate::Simulation`].
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed the monitor's
    /// integer range.
    pub fn replay_into_monitor(&self, xi: &Xi) -> Result<IncrementalChecker, CheckError> {
        Ok(self.replay_monitor_inner(xi, false)?.0)
    }

    /// Like [`Trace::replay_into_monitor`], but stops streaming as soon as
    /// the monitor latches a violation. Returns the monitor plus the index
    /// of the trace event whose append closed the first violating cycle
    /// (`None` if the whole trace is admissible) — the building block of
    /// sweep harnesses that only need the first verdict per run.
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed the monitor's
    /// integer range.
    pub fn replay_into_monitor_until_violation(
        &self,
        xi: &Xi,
    ) -> Result<(IncrementalChecker, Option<usize>), CheckError> {
        self.replay_monitor_inner(xi, true)
    }

    /// Like [`Trace::replay_into_monitor`], but in bounded-memory mode:
    /// the monitor's graph mirror is dropped
    /// ([`IncrementalChecker::enable_pruning`]) and, every `prune_every`
    /// appended events, its settled prefix is compacted with the exact
    /// lookahead watermark (the oldest send event any *remaining* trace
    /// event names — computable offline because the whole trace is known).
    /// Verdicts, latch points, and witness summaries are byte-identical to
    /// [`Trace::replay_into_monitor`]; memory is bounded by the live
    /// window instead of the trace length.
    ///
    /// # Errors
    ///
    /// [`CheckError::XiTooLarge`] if `Ξ`'s parts exceed the monitor's
    /// integer range.
    ///
    /// # Panics
    ///
    /// Panics if `prune_every` is zero.
    pub fn replay_into_monitor_bounded(
        &self,
        xi: &Xi,
        prune_every: usize,
    ) -> Result<IncrementalChecker, CheckError> {
        assert!(prune_every > 0, "prune_every must be positive");
        // suffix_min[i] = the oldest send event any event at index >= i
        // names — after appending event i, no later append can name
        // anything below suffix_min[i + 1].
        let mut suffix_min: Vec<usize> = vec![usize::MAX; self.events.len() + 1];
        for (idx, ev) in self.events.iter().enumerate().rev() {
            let named = ev
                .trigger
                .map_or(usize::MAX, |mi| self.messages[mi].send_event);
            suffix_min[idx] = named.min(suffix_min[idx + 1]);
        }
        let mut mon = IncrementalChecker::new(self.num_processes, xi)?;
        mon.enable_pruning();
        for (p, faulty) in self.faulty.iter().enumerate() {
            if *faulty {
                mon.mark_faulty(ProcessId(p));
            }
        }
        for (idx, ev) in self.events.iter().enumerate() {
            match ev.trigger {
                None => {
                    mon.append_init(ev.process);
                }
                Some(mi) => {
                    mon.append_send(EventId(self.messages[mi].send_event), ev.process);
                }
            }
            if (idx + 1) % prune_every == 0 {
                let watermark = suffix_min[idx + 1].min(idx + 1);
                mon.prune_settled(Some(EventId(watermark)));
            }
        }
        Ok(mon)
    }

    fn replay_monitor_inner(
        &self,
        xi: &Xi,
        stop_on_violation: bool,
    ) -> Result<(IncrementalChecker, Option<usize>), CheckError> {
        let mut mon = IncrementalChecker::new(self.num_processes, xi)?;
        for (p, faulty) in self.faulty.iter().enumerate() {
            if *faulty {
                mon.mark_faulty(ProcessId(p));
            }
        }
        let mut violation_at = None;
        for (idx, ev) in self.events.iter().enumerate() {
            match ev.trigger {
                None => {
                    mon.append_init(ev.process);
                }
                Some(mi) => {
                    // Completed trace events map to graph events by index.
                    let send_event = EventId(self.messages[mi].send_event);
                    mon.append_send(send_event, ev.process);
                }
            }
            if violation_at.is_none() && mon.violation().is_some() {
                violation_at = Some(idx);
                if stop_on_violation {
                    break;
                }
            }
        }
        Ok((mon, violation_at))
    }

    /// The real occurrence times of the graph events produced by
    /// [`Trace::to_execution_graph`], as a [`TimedGraph`].
    #[must_use]
    pub fn to_timed_graph(&self) -> TimedGraph {
        // Graph events are created in trace order, so times align 1:1 with
        // completed trace events.
        let times: Vec<Ratio> = self
            .events
            .iter()
            .map(|e| {
                // Tie-break equal times by the global sequence number so
                // that process lines are strictly increasing, scaled to
                // keep the integer part meaningful: t + seq/(N+1).
                let n = self.events.len() as i64 + 1;
                Ratio::from_integer(i64::try_from(e.time).expect("time fits i64"))
                    + Ratio::new(e.seq as i64, n)
            })
            .collect();
        TimedGraph::new(times)
    }

    /// Count of events at each process.
    #[must_use]
    pub fn events_per_process(&self) -> Vec<usize> {
        let mut counts = vec![0; self.num_processes];
        for e in &self.events {
            counts[e.process.0] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::FixedDelay;
    use crate::engine::{RunLimits, Simulation};
    use crate::process::{Context, Process};

    /// Everyone broadcasts once at init; no replies.
    struct Bcast;
    impl Process<u8> for Bcast {
        fn on_init(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.broadcast(7);
        }
        fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: &u8) {}
    }

    #[test]
    fn trace_to_graph_round_trip() {
        let mut sim = Simulation::new(FixedDelay::new(3));
        for _ in 0..3 {
            sim.add_process(Bcast);
        }
        sim.run(RunLimits::default());
        let trace = sim.trace();
        // 3 inits + 9 broadcast receptions.
        assert_eq!(trace.events().len(), 12);
        assert_eq!(trace.messages().len(), 9);
        let (g, map) = trace.to_execution_graph_with_map();
        assert_eq!(g.num_events(), 12);
        assert_eq!(g.num_messages(), 9);
        assert!(map.iter().all(Option::is_some));
        let timed = trace.to_timed_graph();
        timed.validate(&g).unwrap();
        // All messages have delay ~3 (mod tie-break fractions).
        for m in g.messages() {
            let d = timed.message_delay(&g, m.id);
            assert!(d > Ratio::from_integer(2) && d < Ratio::from_integer(4));
        }
    }
}
