//! The Archimedean model (Vitányi 1984).
//!
//! Bounds the ratio `s ≥ u/c` between `u` — the maximum computing step time
//! plus transmission delay — and `c` — the minimum computing step time. On
//! timed executions of zero-time-step systems we read "step time" as the
//! spacing of consecutive events at a process, giving the checker below.

use abc_core::graph::{ExecutionGraph, ProcessId};
use abc_core::timed::TimedGraph;
use abc_rational::Ratio;

/// The observed Archimedean ratio `u/c`: maximum (inter-step gap or message
/// delay) over minimum inter-step gap. `None` when no process took two
/// steps.
#[must_use]
pub fn observed_ratio(g: &ExecutionGraph, timed: &TimedGraph) -> Option<Ratio> {
    let mut min_gap: Option<Ratio> = None;
    let mut max_quantity: Option<Ratio> = None;
    for p in 0..g.num_processes() {
        for w in g.events_of(ProcessId(p)).windows(2) {
            let gap = timed.time(w[1]) - timed.time(w[0]);
            min_gap = Some(match min_gap {
                None => gap.clone(),
                Some(m) => m.min(gap.clone()),
            });
            max_quantity = Some(match max_quantity {
                None => gap,
                Some(m) => m.max(gap),
            });
        }
    }
    for m in g.effective_messages() {
        let d = timed.message_delay(g, m.id);
        max_quantity = Some(match max_quantity {
            None => d,
            Some(m) => m.max(d),
        });
    }
    let (lo, hi) = (min_gap?, max_quantity?);
    if lo.is_zero() {
        return None; // unbounded
    }
    Some(&hi / &lo)
}

/// Whether the execution is Archimedean-admissible for ratio bound `s`.
#[must_use]
pub fn is_admissible(g: &ExecutionGraph, timed: &TimedGraph, s: &Ratio) -> bool {
    match observed_ratio(g, timed) {
        None => g.events_of(ProcessId(0)).len() <= 1, // degenerate: vacuous
        Some(r) => &r <= s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_execution_has_small_ratio() {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_, r1) = b.send(a, ProcessId(1));
        let (_, _r2) = b.send(r1, ProcessId(0));
        let g = b.finish();
        let timed = TimedGraph::from_integer_times(&[0, 0, 5, 10]);
        let r = observed_ratio(&g, &timed).unwrap();
        assert_eq!(r, Ratio::from_integer(2)); // gaps 5,10; delays 5,5; min 5
        assert!(is_admissible(&g, &timed, &Ratio::from_integer(2)));
        assert!(!is_admissible(&g, &timed, &Ratio::new(3, 2)));
    }

    #[test]
    fn growing_delay_execution_violates_every_s() {
        // One process steps fast while another's messages take ever longer.
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_, r1) = b.send(a, ProcessId(0)); // delay 1 (min gap 1)
        let (_, _r2) = b.send(r1, ProcessId(1)); // delay 10_000
        let g = b.finish();
        let timed = TimedGraph::from_integer_times(&[0, 0, 1, 10_001]);
        let r = observed_ratio(&g, &timed).unwrap();
        assert!(r >= Ratio::from_integer(10_000));
    }
}
