//! The Message Classification Model (Fetzer 1998).
//!
//! MCM assumes every received message is correctly flagged *slow* or *fast*
//! such that every slow delay strictly exceeds **twice** every fast delay,
//! with at least one process communicating bidirectionally via fast
//! messages with everyone (so "all slow" is not a loophole). The paper
//! contrasts it with ABC: MCM uses local *slow* messages to time out fast
//! round trips, ABC uses fast message *chains* to time out slow ones — and
//! MCM's classification forbids any two simultaneously-in-transit messages
//! with delay ratio in `(1, 2]` across the class boundary.
//!
//! [`classify`] decides whether a delay multiset admits any valid
//! classification with a non-empty fast class.

use abc_core::graph::ExecutionGraph;
use abc_core::timed::TimedGraph;
use abc_rational::Ratio;

/// A valid MCM classification: delays at or below `fast_max` are fast,
/// the rest slow, and `slow_min > 2·fast_max`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    /// The largest fast delay.
    pub fast_max: Ratio,
    /// The smallest slow delay (`None` if everything is fast).
    pub slow_min: Option<Ratio>,
    /// Number of fast messages.
    pub fast_count: usize,
    /// Number of slow messages.
    pub slow_count: usize,
}

/// Finds a classification of the effective-message delays with the largest
/// possible fast class, or `None` if no valid classification exists.
///
/// A classification is valid when every slow delay is more than twice
/// every fast delay; the all-fast classification is valid trivially, so
/// `None` is only returned for empty delay sets.
#[must_use]
pub fn classify(g: &ExecutionGraph, timed: &TimedGraph) -> Option<Classification> {
    let mut delays: Vec<Ratio> = g
        .effective_messages()
        .map(|m| timed.message_delay(g, m.id))
        .collect();
    delays.sort();
    if delays.is_empty() {
        return None;
    }
    let two = Ratio::from_integer(2);
    // Largest split index i (delays[..i] fast, rest slow) with a factor-2
    // gap: need delays[i] > 2·delays[i-1]. Prefer a populated slow class;
    // fall back to the trivial all-fast classification.
    for i in (1..delays.len()).rev() {
        if delays[i] > &two * &delays[i - 1] {
            return Some(Classification {
                fast_max: delays[i - 1].clone(),
                slow_min: Some(delays[i].clone()),
                fast_count: i,
                slow_count: delays.len() - i,
            });
        }
    }
    Some(Classification {
        fast_max: delays.last().cloned().expect("nonempty"),
        slow_min: None,
        fast_count: delays.len(),
        slow_count: 0,
    })
}

/// Whether a *non-trivial* classification (both classes populated) exists —
/// the situation MCM's timeout mechanism actually needs.
#[must_use]
pub fn has_two_class_classification(g: &ExecutionGraph, timed: &TimedGraph) -> bool {
    matches!(
        classify(g, timed),
        Some(Classification {
            slow_min: Some(_),
            ..
        })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_core::ProcessId;

    fn delays_graph(delays: &[i64]) -> (ExecutionGraph, TimedGraph) {
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let mut times = vec![0i64, 0];
        let mut sorted: Vec<i64> = delays.to_vec();
        sorted.sort_unstable(); // receive order must be chronological
        for d in &sorted {
            b.send(a, ProcessId(1));
            times.push(*d);
        }
        (b.finish(), TimedGraph::from_integer_times(&times))
    }

    #[test]
    fn separated_delays_classify() {
        let (g, t) = delays_graph(&[1, 2, 5, 6]);
        let c = classify(&g, &t).unwrap();
        assert_eq!(c.fast_count, 2);
        assert_eq!(c.slow_count, 2);
        assert_eq!(c.fast_max, Ratio::from_integer(2));
        assert_eq!(c.slow_min, Some(Ratio::from_integer(5)));
        assert!(has_two_class_classification(&g, &t));
    }

    #[test]
    fn dense_delays_only_classify_trivially() {
        // 4, 5, 6, 7: no split point has a factor-2 gap.
        let (g, t) = delays_graph(&[4, 5, 6, 7]);
        let c = classify(&g, &t).unwrap();
        assert_eq!(c.slow_count, 0, "only the all-fast classification works");
        assert!(!has_two_class_classification(&g, &t));
    }

    #[test]
    fn largest_fast_class_is_preferred() {
        // 1, 2, 10, 30: splits after 2 (10 > 4) and after 10 (30 > 20) are
        // both valid; the classifier takes the larger fast class.
        let (g, t) = delays_graph(&[1, 2, 10, 30]);
        let c = classify(&g, &t).unwrap();
        assert_eq!(c.fast_count, 3);
        assert_eq!(c.slow_min, Some(Ratio::from_integer(30)));
    }
}
