//! The Finite Average Response time (FAR) model (Fetzer, Schmid &
//! Süßkraut).
//!
//! FAR assumes (i) an unknown lower bound on computing step times and
//! (ii) a finite average of round-trip delays between correct process
//! pairs. Delays may grow without bound as long as enough short round
//! trips compensate — which is exactly what fails for the paper's
//! spacecraft-formation scenario (§5.3): delays that grow *monotonically*
//! have diverging running averages, so FAR rejects executions the ABC
//! model admits.
//!
//! The checker below tests the operational consequence on a finite trace:
//! whether the running average of message delays stays below a budget `A`
//! at every prefix (a finite-trace proxy for "finite average"; the
//! experiments sweep `A` and show divergence for growing-delay families).

use abc_core::graph::ExecutionGraph;
use abc_core::timed::TimedGraph;
use abc_rational::Ratio;

/// The running averages of effective-message delays, per prefix of the
/// execution (messages ordered by send time).
#[must_use]
pub fn running_average_delays(g: &ExecutionGraph, timed: &TimedGraph) -> Vec<Ratio> {
    let mut delays: Vec<(Ratio, Ratio)> = g
        .effective_messages()
        .map(|m| (timed.time(m.from).clone(), timed.message_delay(g, m.id)))
        .collect();
    delays.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(delays.len());
    let mut sum = Ratio::zero();
    for (i, (_, d)) in delays.into_iter().enumerate() {
        sum += d;
        out.push(&sum / &Ratio::from_integer(i as i64 + 1));
    }
    out
}

/// FAR admissibility proxy: every prefix average stays at or below `budget`
/// and the minimum inter-event gap is at least `min_step`.
#[must_use]
pub fn is_admissible(
    g: &ExecutionGraph,
    timed: &TimedGraph,
    budget: &Ratio,
    min_step: &Ratio,
) -> bool {
    for p in 0..g.num_processes() {
        for w in g.events_of(abc_core::ProcessId(p)).windows(2) {
            if &(timed.time(w[1]) - timed.time(w[0])) < min_step {
                return false;
            }
        }
    }
    running_average_delays(g, timed)
        .iter()
        .all(|avg| avg <= budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_core::ProcessId;

    /// p0 sends `k` messages to p1 with delays `d(i)`.
    fn chain(delays: &[i64]) -> (ExecutionGraph, TimedGraph) {
        let mut b = ExecutionGraph::builder(2);
        let mut cur = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let mut times = vec![0i64, 0];
        let mut t = 0;
        for (i, d) in delays.iter().enumerate() {
            // Alternate a self-message to advance p0's line, then the send.
            let dest = ProcessId(1);
            let (_, recv) = b.send(cur, dest);
            t += d;
            times.push(t);
            // Continue the chain from p1's event back at p0 via reply.
            let (_, back) = b.send(recv, ProcessId(0));
            t += 1;
            times.push(t);
            cur = back;
            let _ = i;
        }
        (b.finish(), TimedGraph::from_integer_times(&times))
    }

    #[test]
    fn bounded_delays_have_bounded_average() {
        let (g, timed) = chain(&[5, 5, 5, 5]);
        let avgs = running_average_delays(&g, &timed);
        assert!(avgs.iter().all(|a| a <= &Ratio::from_integer(5)));
        assert!(is_admissible(
            &g,
            &timed,
            &Ratio::from_integer(5),
            &Ratio::new(1, 2)
        ));
    }

    #[test]
    fn growing_delays_diverge() {
        // Delays 10, 100, 1000, 10000: the running average diverges past
        // any fixed budget.
        let (g, timed) = chain(&[10, 100, 1_000, 10_000]);
        let avgs = running_average_delays(&g, &timed);
        assert!(avgs.last().unwrap() > &Ratio::from_integer(1_000));
        assert!(!is_admissible(
            &g,
            &timed,
            &Ratio::from_integer(100),
            &Ratio::new(1, 2)
        ));
    }

    #[test]
    fn short_steps_violate_min_step() {
        // p1's inter-event gap is 5 (< 6), so a min-step bound of 6 fails
        // even though the delay budget is met.
        let (g, timed) = chain(&[5, 5]);
        assert!(is_admissible(
            &g,
            &timed,
            &Ratio::from_integer(10),
            &Ratio::from_integer(5)
        ));
        assert!(!is_admissible(
            &g,
            &timed,
            &Ratio::from_integer(10),
            &Ratio::from_integer(6)
        ));
    }
}
