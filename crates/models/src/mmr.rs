//! The MMR query–response model (Mostefaoui, Mourgaya & Raynal 2003).
//!
//! MMR assumes that in every round trip of a process `p_i` with all its
//! peers, a *fixed* set `Q_i` of processes responds among the first `n−f`
//! responses. The paper interprets the condition as a special event-order
//! constraint (a `Ξ = 1`-like property for certain messages) and shows MMR
//! cannot time out messages reliably (no uniform lock-step, no Lemma 4
//! analogue).
//!
//! This module provides a query–response round simulation driver and the
//! winner-set checker: the MMR property holds iff the intersection of the
//! "first `n−f` responders" sets across rounds contains at least `n−f`
//! processes.

use abc_core::ProcessId;
use abc_sim::delay::DelayModel;
use abc_sim::{Context, Process, RunLimits, Simulation};

/// Message type for query–response rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QrMsg {
    /// A query stamped with its round.
    Query(u64),
    /// A response to the given round.
    Response(u64),
}

/// The querying process: broadcasts `Query(r)`, collects responses, starts
/// round `r+1` once `n−f` responses for `r` arrived. Records the first
/// `n−f` responders of every round.
#[derive(Clone, Debug)]
pub struct Querier {
    n: usize,
    f: usize,
    rounds: u64,
    current: u64,
    got: Vec<ProcessId>,
    /// Per completed round: the first `n−f` responders, in arrival order.
    pub winners: Vec<Vec<ProcessId>>,
}

impl Querier {
    /// A querier over `n` processes (`f` potential crashes), running
    /// `rounds` query–response rounds.
    #[must_use]
    pub fn new(n: usize, f: usize, rounds: u64) -> Querier {
        Querier {
            n,
            f,
            rounds,
            current: 0,
            got: Vec::new(),
            winners: Vec::new(),
        }
    }
}

impl Process<QrMsg> for Querier {
    fn on_init(&mut self, ctx: &mut Context<'_, QrMsg>) {
        ctx.broadcast(QrMsg::Query(0));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, QrMsg>, from: ProcessId, msg: &QrMsg) {
        match msg {
            QrMsg::Query(_) => {} // queriers ignore others' queries
            QrMsg::Response(r) => {
                if *r != self.current || self.got.contains(&from) {
                    return;
                }
                self.got.push(from);
                if self.got.len() >= self.n - self.f {
                    self.winners.push(self.got.clone());
                    self.got.clear();
                    self.current += 1;
                    if self.current < self.rounds {
                        ctx.broadcast(QrMsg::Query(self.current));
                    }
                }
            }
        }
    }
}

/// A responder: answers every query immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct Responder;

impl Process<QrMsg> for Responder {
    fn on_init(&mut self, _ctx: &mut Context<'_, QrMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, QrMsg>, from: ProcessId, msg: &QrMsg) {
        if let QrMsg::Query(r) = msg {
            ctx.send(from, QrMsg::Response(*r));
        }
    }
}

/// Whether the MMR property holds for a querier's observations: some fixed
/// set of `n−f` processes is contained in every round's winner set.
#[must_use]
pub fn mmr_property_holds(winners: &[Vec<ProcessId>], n: usize, f: usize) -> bool {
    if winners.is_empty() {
        return true;
    }
    let mut mask: u128 = (1 << n) - 1;
    for round in winners {
        let mut round_mask: u128 = 0;
        for p in round {
            round_mask |= 1 << p.0;
        }
        mask &= round_mask;
    }
    mask.count_ones() as usize >= n - f
}

/// Runs a full MMR experiment: process 0 queries, the rest respond, under
/// the given delay model. Returns the winner sets observed.
pub fn run_mmr_rounds<D: DelayModel>(
    n: usize,
    f: usize,
    rounds: u64,
    delay: D,
) -> Vec<Vec<ProcessId>> {
    let mut sim = Simulation::new(delay);
    sim.add_process(Querier::new(n, f, rounds));
    for _ in 1..n {
        sim.add_process(Responder);
    }
    sim.run(RunLimits {
        max_events: 200_000,
        max_time: u64::MAX,
    });
    sim.process_as::<Querier>(ProcessId(0))
        .expect("querier is process 0")
        .winners
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_sim::delay::{AdversarialSpan, BandDelay, FixedDelay};

    #[test]
    fn fixed_delays_satisfy_mmr() {
        let winners = run_mmr_rounds(4, 1, 10, FixedDelay::new(5));
        assert_eq!(winners.len(), 10);
        assert!(mmr_property_holds(&winners, 4, 1));
    }

    #[test]
    fn stable_fast_quorum_satisfies_mmr() {
        // Responses *to* p0 are uniform; the victim link slows messages
        // TO p3 (its queries arrive late, so p3 responds late every round):
        // the fixed quorum {p1, p2} + ... remains stable.
        let winners = run_mmr_rounds(4, 1, 10, AdversarialSpan::new(5, 50, ProcessId(3)));
        assert!(mmr_property_holds(&winners, 4, 1));
    }

    #[test]
    fn jittery_delays_can_break_mmr() {
        // Wide random jitter: different processes win different rounds;
        // with enough rounds the intersection drops below n−f. (Seeded so
        // the outcome is deterministic; seed chosen to exhibit a break.)
        let mut broke = false;
        for seed in 0..20 {
            let winners = run_mmr_rounds(5, 2, 12, BandDelay::new(1, 50, seed));
            if !mmr_property_holds(&winners, 5, 2) {
                broke = true;
                break;
            }
        }
        assert!(broke, "no seed broke MMR with jitter 1..50 — unexpected");
    }

    #[test]
    fn property_vacuous_without_rounds() {
        assert!(mmr_property_holds(&[], 4, 1));
    }
}
