//! The partially synchronous model zoo of the ABC paper (Sections 1 and 5).
//!
//! The paper positions the ABC model against seven families of partially
//! synchronous models. This crate implements admissibility checkers for
//! each — all operating on the same timed execution graphs that `abc-sim`
//! produces — plus constructions of the paper's separation scenarios:
//!
//! | Model | Module | Synchrony condition (checked) |
//! |---|---|---|
//! | Θ-Model (Le Lann/Schmid/Widder) | [`theta`] | `τ⁺(t)/τ⁻(t) ≤ Θ` at all times |
//! | ParSync / DLS (Dwork–Lynch–Stockmeyer) | [`parsync`] | relative speed `Φ`, delay `Δ` (in fastest-step units) |
//! | Archimedean (Vitányi) | [`archimedean`] | `(step + delay) / min-step ≤ s` |
//! | FAR (Fetzer–Schmid–Süßkraut) | [`far`] | lower-bounded steps, finite average delay |
//! | MCM (Fetzer) | [`mcm`] | slow/fast classifiable with factor-2 gap |
//! | MMR (Mostefaoui–Mourgaya–Raynal) | [`mmr`] | fixed quorum among first `n−f` responders |
//! | ABC (this paper) | `abc_core::check` | `|Z−|/|Z+| < Ξ` on relevant cycles |
//!
//! [`scenarios`] builds the paper's separation witnesses: Fig. 8 (the
//! Prover/Adversary game defeating every `(Φ, Δ)`), Fig. 9 (2-hop delay
//! compensation), Fig. 10 (ABC-enforced FIFO under unbounded delays), and
//! the spacecraft-formation growing-delay family.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archimedean;
pub mod far;
pub mod mcm;
pub mod mmr;
pub mod parsync;
pub mod scenarios;
pub mod theta;
