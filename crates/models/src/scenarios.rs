//! The paper's separation scenarios: executions admissible in the ABC
//! model but in none of the classic partially synchronous models.
//!
//! * [`fig9_compensated_paths`] — Fig. 9: a long `q → r` link compensated
//!   by a fast `r → s` link; only *path sums* matter for the ABC condition,
//!   so per-link Θ-style constraints are violated while ABC holds.
//! * [`fig10_fifo`] — Fig. 10: with `Ξ = 4`, the ABC condition *implies*
//!   FIFO order on the `p2 → q1` link even though its delays grow without
//!   bound; the reordered variant contains a ratio-5 relevant cycle.
//! * [`spacecraft_growing_delays`] — §5.1/§5.3: two clusters drifting
//!   apart; inter-cluster delays grow forever, defeating every finite
//!   delay bound (ParSync), every delay ratio over time (Θ on overlapping
//!   transits stays fine here by construction), and FAR's finite average —
//!   while the ABC condition holds with room to spare.

use abc_core::graph::{ExecutionGraph, ProcessId};
use abc_core::timed::TimedGraph;

/// Fig. 9: `q` ping-pongs with `p` over a 1-hop path while talking to `s`
/// via `r` over a 2-hop path whose first link is slow and second is fast.
///
/// Returns `(graph, timed)`. The relevant cycle compares the 4-message
/// round trip `q→r→s→r→q` against `Ξ` instances of the 2-message round
/// trip `q→p→q`; with link delays `(q→r) = 38, (r→s) = 2` and
/// `(q→p) = 10`, the 4-hop path sums to 80 against two 2-hop round trips
/// of 40 — individually the `q→r` link is 3.8× the `q→p` link (violating
/// any per-link Θ < 3.8), but the cycle ratio stays at 4/4 = 1.
#[must_use]
pub fn fig9_compensated_paths() -> (ExecutionGraph, TimedGraph) {
    // Processes: 0 = q, 1 = p, 2 = r, 3 = s.
    let mut b = ExecutionGraph::builder(4);
    let q0 = b.init(ProcessId(0));
    for i in 1..4 {
        b.init(ProcessId(i));
    }
    let mut times: Vec<(usize, i64)> = (0..4).map(|e| (e, 0)).collect();
    // Two ping-pong round trips with p: q→p (10), p→q (10), q→p, p→q.
    let mut cur = q0;
    let mut t = 0;
    let mut pp_last = q0;
    for i in 0..4 {
        let dest = if i % 2 == 0 {
            ProcessId(1)
        } else {
            ProcessId(0)
        };
        let (_, recv) = b.send(cur, dest);
        t += 10;
        times.push((recv.0, t));
        cur = recv;
        pp_last = recv;
    }
    // The 2-hop round trip: q→r (38), r→s (2), s→r (2), r→q (38), arriving
    // at q after the ping-pongs (80 > 40).
    let mut cur = q0;
    let mut t = 0;
    for (dest, d) in [
        (ProcessId(2), 38),
        (ProcessId(3), 2),
        (ProcessId(2), 2),
        (ProcessId(0), 38),
    ] {
        let (_, recv) = b.send(cur, dest);
        t += d;
        times.push((recv.0, t));
        cur = recv;
    }
    let _ = pp_last;
    let g = b.finish();
    let mut full = vec![0i64; g.num_events()];
    for (e, tt) in times {
        full[e] = tt;
    }
    (g, TimedGraph::from_integer_times(&full))
}

/// Fig. 10: bounded-size FIFO from the ABC condition alone.
///
/// `p1 ↔ p2` ping-pong while `p2` sends two messages `φ, φ'` to `q1` with
/// huge, growing delays. Between the two sends, four ping-pong messages
/// pass. Returns `(in_order, reordered)` graphs: the in-order variant is
/// admissible for `Ξ = 4`; the reordered variant (second message
/// overtaking the first) contains a relevant cycle with `|Z−|/|Z+| = 5`.
#[must_use]
pub fn fig10_fifo() -> (ExecutionGraph, ExecutionGraph) {
    let build = |reorder: bool| -> ExecutionGraph {
        // Processes: 0 = p1, 1 = p2, 2 = q1.
        let mut b = ExecutionGraph::builder(3);
        let p1_0 = b.init(ProcessId(0));
        b.init(ProcessId(1));
        b.init(ProcessId(2));
        // p1 starts the ping-pong: p1 → p2.
        let (_, a1) = b.send(p1_0, ProcessId(1)); // p2's first event
                                                  // p2 sends φ to q1.
        let (phi, _) = {
            // Delay the receive event creation to control order: builder
            // receive order = call order, so stage sends accordingly.
            (a1, ())
        };
        let _ = phi;
        // We need explicit control of q1's receive order; collect the send
        // events first.
        // Ping-pong: a1 → p1 (b1), b1 → p2 (a2), a2 → p1 (b2), b2 → p2 (a3).
        let (_, b1) = b.send(a1, ProcessId(0));
        let (_, a2) = b.send(b1, ProcessId(1));
        let (_, b2) = b.send(a2, ProcessId(0));
        let (_, a3) = b.send(b2, ProcessId(1));
        // φ is sent at a1 (before the 4 ping-pong messages), φ' at a3
        // (after). In-order: φ arrives first; reordered: φ' overtakes.
        if reorder {
            let (_, _phi2_recv) = b.send(a3, ProcessId(2));
            let (_, _phi_recv) = b.send(a1, ProcessId(2));
        } else {
            let (_, _phi_recv) = b.send(a1, ProcessId(2));
            let (_, _phi2_recv) = b.send(a3, ProcessId(2));
        }
        b.finish()
    };
    (build(false), build(true))
}

/// §5.1/§5.3: two clusters of spacecraft drifting apart. Intra-cluster
/// round trips stay fast (delay 1); inter-cluster messages take
/// `base · 2^i` for the `i`-th exchange. Returns `(graph, timed)`; the
/// inter-cluster delays are unbounded and monotonically growing, yet every
/// relevant cycle compares one inter-cluster round trip against the *next*
/// one, keeping ratios bounded.
#[must_use]
pub fn spacecraft_growing_delays(exchanges: usize) -> (ExecutionGraph, TimedGraph) {
    // Processes: 0, 1 = cluster A; 2, 3 = cluster B.
    let mut b = ExecutionGraph::builder(4);
    let a0 = b.init(ProcessId(0));
    for i in 1..4 {
        b.init(ProcessId(i));
    }
    let mut times: Vec<(usize, i64)> = (0..4).map(|e| (e, 0)).collect();
    let mut cur = a0;
    let mut t0: i64 = 0;
    let mut delay: i64 = 4;
    for _ in 0..exchanges {
        // The inter-cluster round trip departs first: 0 → 2 (delay), then
        // B-cluster chat 2 → 3 → 2 (delay 1 each), then the reply 2 → 0.
        let (_, z) = b.send(cur, ProcessId(2));
        times.push((z.0, t0 + delay));
        let (_, b1) = b.send(z, ProcessId(3));
        times.push((b1.0, t0 + delay + 1));
        let (_, b2) = b.send(b1, ProcessId(2));
        times.push((b2.0, t0 + delay + 2));
        // Meanwhile cluster A ping-pongs: 3 round trips (6 messages of
        // delay 1) finish long before the inter-cluster reply.
        let mut pp = cur;
        for j in 0..6 {
            let dest = if j % 2 == 0 {
                ProcessId(1)
            } else {
                ProcessId(0)
            };
            let (_, recv) = b.send(pp, dest);
            times.push((recv.0, t0 + j + 1));
            pp = recv;
        }
        // The reply arrives at p0 after the ping-pongs: a relevant cycle
        // with 6 backward (fast) vs 4 forward (inter + B-chat) messages —
        // ratio 3/2, regardless of how large `delay` has grown.
        let (_, w) = b.send(b2, ProcessId(0));
        times.push((w.0, t0 + 2 * delay + 2));
        cur = w;
        t0 += 2 * delay + 2;
        delay *= 2;
    }
    let g = b.finish();
    let mut full = vec![0i64; g.num_events()];
    for (e, tt) in times {
        full[e] = tt;
    }
    (g, TimedGraph::from_integer_times(&full))
}

/// The prebuilt scenarios by stable name, for harnesses and CLIs
/// (`abc check --scenario <name>`): each entry is `(name, description,
/// builder)` where the builder returns the scenario's execution graph.
#[must_use]
pub fn named() -> Vec<(&'static str, &'static str, fn() -> ExecutionGraph)> {
    vec![
        (
            "fig9",
            "Fig. 9: 2-hop delay compensation (ABC-admissible, per-link ratios wild)",
            || fig9_compensated_paths().0,
        ),
        (
            "fig10-inorder",
            "Fig. 10: FIFO-ordered growing-delay link (admissible for Xi = 4)",
            || fig10_fifo().0,
        ),
        (
            "fig10-reordered",
            "Fig. 10: the reordered variant (ratio-5 relevant cycle)",
            || fig10_fifo().1,
        ),
        (
            "spacecraft",
            "Sec. 5.1/5.3: two drifting clusters, 8 exchanges of doubling delays",
            || spacecraft_growing_delays(8).0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{archimedean, far, parsync};
    use abc_core::{check, Xi};
    use abc_rational::Ratio;

    #[test]
    fn named_registry_builds_checkable_graphs() {
        let entries = named();
        assert!(entries.len() >= 4);
        for (name, _, build) in entries {
            let g = build();
            assert!(g.num_events() > 0, "{name}: empty graph");
            // Every named scenario must be decidable by the batch checker.
            let _ = check::is_admissible(&g, &Xi::from_integer(4)).unwrap();
        }
        assert!(!check::is_admissible(
            &named()
                .iter()
                .find(|(n, _, _)| *n == "fig10-reordered")
                .unwrap()
                .2(),
            &Xi::from_integer(4)
        )
        .unwrap());
    }

    #[test]
    fn fig9_abc_admissible_but_per_link_ratios_wild() {
        let (g, timed) = fig9_compensated_paths();
        timed.validate(&g).unwrap();
        // Cycle ratio 1 (both chains have 4 messages): admissible for any Ξ.
        let ratio = check::max_relevant_cycle_ratio(&g).unwrap().unwrap();
        assert_eq!(ratio, Ratio::from_integer(1));
        assert!(check::is_admissible(&g, &Xi::from_fraction(11, 10)).unwrap());
        // Per-message delays span 2..38: Θ over overlapping transits
        // exceeds 3 (the slow q→r overlaps the fast ping-pongs).
        let theta = timed.max_theta_ratio(&g).unwrap().unwrap();
        assert!(theta >= Ratio::from_integer(3), "theta = {theta}");
    }

    #[test]
    fn fig10_fifo_is_forced_by_xi_4() {
        let (in_order, reordered) = fig10_fifo();
        let xi = Xi::from_integer(4);
        assert!(check::is_admissible(&in_order, &xi).unwrap());
        assert!(!check::is_admissible(&reordered, &xi).unwrap());
        // The reordering witness has ratio exactly 5 (4 ping-pongs + φ
        // against φ′).
        assert_eq!(
            check::max_relevant_cycle_ratio(&reordered),
            Ok(Some(Ratio::from_integer(5)))
        );
        // With Ξ = 6 the reordering would be allowed: the FIFO guarantee
        // is exactly as strong as Ξ is small.
        assert!(check::is_admissible(&reordered, &Xi::from_integer(6)).unwrap());
    }

    #[test]
    fn spacecraft_defeats_other_models_but_not_abc() {
        let (g, timed) = spacecraft_growing_delays(12);
        timed.validate(&g).unwrap();
        // ABC: admissible with a small Ξ — the ratio is 3/2 per exchange
        // and composes to 3/2 across exchanges.
        let ratio = check::max_relevant_cycle_ratio(&g).unwrap().unwrap();
        assert!(
            ratio <= Ratio::from_integer(2),
            "cycle ratio stays small: {ratio}"
        );
        assert!(check::is_admissible(&g, &Xi::from_integer(2)).unwrap());
        // Θ: fast intra-cluster messages overlap ever-slower inter-cluster
        // ones; the observed Θ diverges with the drift.
        let theta = timed.max_theta_ratio(&g).unwrap().unwrap();
        assert!(theta >= Ratio::from_integer(1_000), "theta = {theta}");
        // ParSync: delays (and gaps) grow without bound vs. step time ~1.
        let verdict =
            parsync::check_parsync(&g, &timed, &parsync::ParSyncParams { phi: 50, delta: 50 });
        assert!(!verdict.admissible);
        // Archimedean: ratio diverges.
        assert!(!archimedean::is_admissible(
            &g,
            &timed,
            &Ratio::from_integer(50)
        ));
        // FAR: the running average of delays diverges (compare prefixes).
        let avgs = far::running_average_delays(&g, &timed);
        let (small, big) = (avgs[avgs.len() / 2].clone(), avgs.last().unwrap().clone());
        assert!(big > &small * &Ratio::from_integer(4), "average diverges");
        assert!(!far::is_admissible(
            &g,
            &timed,
            &Ratio::from_integer(100),
            &Ratio::new(1, 2)
        ));
    }
}
