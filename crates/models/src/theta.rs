//! The Θ-Model (Le Lann & Schmid; Widder & Schmid) and Theorem 6.
//!
//! The static Θ-Model assumes unknown bounds `0 < τ⁻ ≤ τ⁺ < ∞` on the
//! end-to-end delays of correct messages with known `Θ = τ⁺/τ⁻`; condition
//! (3) of the paper then bounds the ratio of the delays of messages
//! *simultaneously in transit* by `Θ` at all times.
//!
//! **Theorem 6** (`MΘ ⊆ MABC` for `Θ < Ξ`): every Θ-admissible execution
//! satisfies the ABC condition, because a relevant cycle with
//! `|Z−| ≥ Ξ·|Z+| > Θ·|Z+|` would need some forward/backward message pair
//! in transit together with delay ratio exceeding `Θ`.
//! [`theta_subset_abc_holds`] verifies exactly this implication on real
//! simulated traces; the converse direction fails on the witnesses in
//! [`crate::scenarios`] (zero-delay messages, growing delays).

use abc_core::graph::ExecutionGraph;
use abc_core::timed::TimedGraph;
use abc_core::{check, Xi};
use abc_rational::Ratio;

/// The observed Θ of a timed execution: the supremum of `τ⁺(t)/τ⁻(t)`
/// (condition (3)), `None` if no two messages ever overlap in transit,
/// `Some(None)` if the ratio is unbounded (a zero-delay overlap).
#[must_use]
pub fn observed_theta(g: &ExecutionGraph, timed: &TimedGraph) -> Option<Option<Ratio>> {
    timed.max_theta_ratio(g)
}

/// Whether the timed execution is admissible in the static Θ-Model with
/// parameter `theta`.
#[must_use]
pub fn is_theta_admissible(g: &ExecutionGraph, timed: &TimedGraph, theta: &Ratio) -> bool {
    timed.is_theta_admissible(g, theta)
}

/// Theorem 6 as an executable check: if the execution is Θ-admissible for
/// `theta` and `theta < Ξ`, then it must satisfy the ABC condition for `Ξ`.
///
/// Returns `true` when the implication holds (including vacuously).
///
/// # Panics
///
/// Panics if the checker rejects `Ξ` (parts exceeding `i64`).
#[must_use]
pub fn theta_subset_abc_holds(
    g: &ExecutionGraph,
    timed: &TimedGraph,
    theta: &Ratio,
    xi: &Xi,
) -> bool {
    if theta >= xi.as_ratio() {
        return true; // the theorem only speaks about Θ < Ξ
    }
    if !is_theta_admissible(g, timed, theta) {
        return true; // vacuous
    }
    check::is_admissible(g, xi).expect("Xi fits checker weights")
}

/// The quantitative core of Theorem 6: the maximum relevant-cycle ratio of
/// a Θ-admissible execution is at most `Θ`.
///
/// Returns `(max_cycle_ratio, observed_theta)` for reporting.
#[must_use]
pub fn cycle_ratio_vs_theta(
    g: &ExecutionGraph,
    timed: &TimedGraph,
) -> (Option<Ratio>, Option<Option<Ratio>>) {
    (
        check::max_relevant_cycle_ratio(g).expect("graph fits the exact-ratio bisection"),
        observed_theta(g, timed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_clocksync::TickGen;
    use abc_sim::delay::BandDelay;
    use abc_sim::{RunLimits, Simulation};

    #[test]
    fn theorem6_on_simulated_band_traces() {
        // Delays in [10, 25]: observed Θ ≤ 2.5 (plus tie-break fuzz).
        for seed in 0..5u64 {
            let mut sim = Simulation::new(BandDelay::new(10, 25, seed));
            for _ in 0..4 {
                sim.add_process(TickGen::new(4, 1));
            }
            sim.run(RunLimits {
                max_events: 800,
                max_time: u64::MAX,
            });
            let g = sim.trace().to_execution_graph();
            let timed = sim.trace().to_timed_graph();
            let theta = Ratio::new(26, 10); // just above 25/10 + fuzz
            assert!(is_theta_admissible(&g, &timed, &theta), "seed {seed}");
            // Theorem 6: cycle ratios bounded by observed theta.
            let (ratio, obs) = cycle_ratio_vs_theta(&g, &timed);
            if let (Some(r), Some(Some(t))) = (&ratio, &obs) {
                assert!(r <= t, "cycle ratio {r} exceeds observed theta {t}");
            }
            let xi = Xi::new(Ratio::new(27, 10)).unwrap();
            assert!(
                theta_subset_abc_holds(&g, &timed, &theta, &xi),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn implication_is_vacuous_when_theta_geq_xi() {
        let mut sim = Simulation::new(BandDelay::new(1, 100, 1));
        for _ in 0..3 {
            sim.add_process(TickGen::new(3, 0));
        }
        sim.run(RunLimits {
            max_events: 100,
            max_time: u64::MAX,
        });
        let g = sim.trace().to_execution_graph();
        let timed = sim.trace().to_timed_graph();
        assert!(theta_subset_abc_holds(
            &g,
            &timed,
            &Ratio::from_integer(1_000),
            &Xi::from_integer(2)
        ));
    }
}
