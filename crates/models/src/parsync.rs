//! The classic partially synchronous model of Dwork, Lynch & Stockmeyer
//! ("ParSync"), and the Fig. 8 Prover/Adversary game.
//!
//! ParSync stipulates a bound `Φ` on relative computing speeds and a bound
//! `Δ` on message delays, both relative to a global clock that ticks with
//! every step. On *timed* executions we use the standard interpretation:
//! normalize by the fastest observed inter-step gap `g` system-wide; the
//! execution is ParSync-admissible iff every process's consecutive-step gap
//! is at most `Φ·g` while the system is active, and every message delay is
//! at most `Δ·g`.
//!
//! **Fig. 8**: for *every* `(Φ, Δ)` there is an ABC-admissible execution
//! (for any `Ξ > 1`!) violating ParSync — a ping-pong chain makes `q` take
//! arbitrarily many fast steps while a slow message to a silent `r` is in
//! transit. [`fig8_execution`] constructs it; the experiment sweeps the
//! adversary's `(Φ, Δ)` choices.

use abc_core::graph::{ExecutionGraph, ProcessId};
use abc_core::timed::TimedGraph;
use abc_core::{check, Xi};
use abc_rational::Ratio;

/// The ParSync parameters: relative speed bound `Φ` and delay bound `Δ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParSyncParams {
    /// Relative computing speed bound.
    pub phi: u64,
    /// Message delay bound, in fastest-step units.
    pub delta: u64,
}

/// The verdict of [`check_parsync`], with the witnessing quantities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParSyncVerdict {
    /// Whether the execution is admissible for the parameters.
    pub admissible: bool,
    /// The fastest inter-step gap `g` used for normalization.
    pub fastest_gap: Option<Ratio>,
    /// The worst relative speed observed (`max gap / g`).
    pub worst_speed_ratio: Option<Ratio>,
    /// The worst delay observed in `g` units.
    pub worst_delay_ratio: Option<Ratio>,
}

/// Checks ParSync admissibility of a timed execution.
///
/// A process's trailing gap (after its last event) is not charged: ParSync
/// only bounds the spacing of steps that happen. Processes with fewer than
/// two events contribute no gaps; the speed bound compares each process's
/// step gaps against the globally fastest step, restricted to windows where
/// the slower process still has a later step.
#[must_use]
pub fn check_parsync(
    g: &ExecutionGraph,
    timed: &TimedGraph,
    params: &ParSyncParams,
) -> ParSyncVerdict {
    let mut gaps: Vec<Ratio> = Vec::new();
    let mut per_process_max: Vec<Ratio> = Vec::new();
    for p in 0..g.num_processes() {
        let evs = g.events_of(ProcessId(p));
        let mut local_max: Option<Ratio> = None;
        for w in evs.windows(2) {
            let gap = timed.time(w[1]) - timed.time(w[0]);
            gaps.push(gap.clone());
            local_max = Some(match local_max {
                None => gap,
                Some(m) => m.max(gap),
            });
        }
        if let Some(m) = local_max {
            per_process_max.push(m);
        }
    }
    let fastest = gaps.iter().min().cloned();
    let Some(gmin) = fastest.clone() else {
        return ParSyncVerdict {
            admissible: true,
            fastest_gap: None,
            worst_speed_ratio: None,
            worst_delay_ratio: None,
        };
    };
    let worst_gap = per_process_max.iter().max().cloned().unwrap();
    let worst_speed = &worst_gap / &gmin;
    let worst_delay = g
        .effective_messages()
        .map(|m| timed.message_delay(g, m.id))
        .max()
        .map(|d| &d / &gmin);
    let speed_ok = worst_speed <= Ratio::from_integer(i64::try_from(params.phi).unwrap());
    let delay_ok = worst_delay
        .as_ref()
        .is_none_or(|d| d <= &Ratio::from_integer(i64::try_from(params.delta).unwrap()));
    ParSyncVerdict {
        admissible: speed_ok && delay_ok,
        fastest_gap: fastest,
        worst_speed_ratio: Some(worst_speed),
        worst_delay_ratio: worst_delay,
    }
}

/// The Fig. 8 construction: `q` ping-pongs `k` times with `p` (fast chain)
/// while a slow `k`-hop chain `q → s₁ → … → s_{k-1} → r` crawls toward the
/// silent process `r`; finally `q`'s message closes the relevant cycle at
/// `r`. Both chains have `k` messages, so the cycle ratio is exactly 1 —
/// ABC-admissible for **every** `Ξ > 1` — while `q` executes `k` steps of
/// duration 1 against message delays of `k·slow`, violating ParSync for
/// any `(Φ, Δ)` with `Φ < hang/1` or `Δ < k·slow`.
///
/// Returns the graph and times; `k` and `slow` are chosen from the
/// adversary's parameters so that both bounds break:
/// `k = Φ + Δ + 2`, `slow = 2(Φ + Δ) + 4`.
#[must_use]
pub fn fig8_execution(params: &ParSyncParams) -> (ExecutionGraph, TimedGraph) {
    let k = usize::try_from(params.phi + params.delta).unwrap() + 2;
    let slow = i64::try_from(2 * (params.phi + params.delta) + 4).unwrap();
    // Processes: 0 = q, 1 = p, 2 = r, 3.. = slow relays (k-1 of them).
    let n = 3 + (k - 1);
    let mut b = ExecutionGraph::builder(n);
    let q0 = b.init(ProcessId(0));
    for i in 1..n {
        b.init(ProcessId(i));
    }
    let mut event_times: Vec<(usize, i64)> = (0..n).map(|e| (e, 0)).collect();
    // Fast chain first (its arrival at r must precede the slow one in r's
    // receive order): k−1 ping-pong messages q ↔ p of delay 1, then one
    // closing message to r from wherever the chain ended.
    let mut cur = q0;
    let mut t = 0i64;
    for i in 0..(k - 1) {
        let dest = if i % 2 == 0 {
            ProcessId(1)
        } else {
            ProcessId(0)
        };
        let (_, recv) = b.send(cur, dest);
        t += 1;
        event_times.push((recv.0, t));
        cur = recv;
    }
    let (_, fast_at_r) = b.send(cur, ProcessId(2));
    t += 1;
    event_times.push((fast_at_r.0, t));
    // Slow chain: q -> s1 -> ... -> s_{k-1} -> r, each hop takes `slow`;
    // its arrival at r closes the relevant cycle (k slow backward vs
    // k fast forward... ratio exactly 1).
    let mut cur = q0;
    let mut t = 0i64;
    for hop in 0..k {
        let dest = if hop == k - 1 {
            ProcessId(2)
        } else {
            ProcessId(3 + hop)
        };
        let (_, recv) = b.send(cur, dest);
        t += slow;
        event_times.push((recv.0, t));
        cur = recv;
    }
    let g = b.finish();
    let mut full = vec![0i64; g.num_events()];
    for (e, tt) in event_times {
        full[e] = tt;
    }
    let timed = TimedGraph::from_integer_times(&full);
    (g, timed)
}

/// Runs the Fig. 8 game for the adversary's `(Φ, Δ)`: returns
/// `(abc_admissible_for_xi, parsync_verdict)`. The Prover wins when the
/// first is `true` and the second is inadmissible.
#[must_use]
pub fn fig8_game(params: &ParSyncParams, xi: &Xi) -> (bool, ParSyncVerdict) {
    let (g, timed) = fig8_execution(params);
    debug_assert!(timed.validate(&g).is_ok());
    let abc = check::is_admissible(&g, xi).expect("Xi fits");
    let verdict = check_parsync(&g, &timed, params);
    (abc, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prover_beats_every_adversary_choice() {
        for (phi, delta) in [(2, 2), (3, 10), (10, 3), (20, 20)] {
            let params = ParSyncParams { phi, delta };
            for xi in [
                Xi::from_fraction(11, 10),
                Xi::from_integer(2),
                Xi::from_integer(10),
            ] {
                let (abc_ok, verdict) = fig8_game(&params, &xi);
                assert!(
                    abc_ok,
                    "Fig 8 execution must be ABC-admissible (phi={phi}, delta={delta}, xi={xi})"
                );
                assert!(
                    !verdict.admissible,
                    "Fig 8 execution must violate ParSync (phi={phi}, delta={delta}): {verdict:?}"
                );
            }
        }
    }

    #[test]
    fn fig8_cycle_ratio_is_one() {
        let (g, _) = fig8_execution(&ParSyncParams { phi: 3, delta: 3 });
        assert_eq!(
            check::max_relevant_cycle_ratio(&g),
            Ok(Some(Ratio::from_integer(1)))
        );
    }

    #[test]
    fn parsync_accepts_lockstep_executions() {
        // Uniform gaps and delays: speed ratio 1, delay ratio = delay/gap.
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_, r1) = b.send(a, ProcessId(1));
        let (_, _r2) = b.send(r1, ProcessId(0));
        let g = b.finish();
        let timed = TimedGraph::from_integer_times(&[0, 0, 5, 10]);
        let v = check_parsync(&g, &timed, &ParSyncParams { phi: 2, delta: 2 });
        assert!(v.admissible, "{v:?}");
        // Gaps are 10 (p0) and 5 (p1): speed ratio exactly 2; delays 5 = 1g.
        let v2 = check_parsync(&g, &timed, &ParSyncParams { phi: 2, delta: 1 });
        assert!(v2.admissible, "speed 2, delay exactly 1x gap: {v2:?}");
        let v3 = check_parsync(&g, &timed, &ParSyncParams { phi: 1, delta: 1 });
        assert!(!v3.admissible, "speed ratio 2 exceeds phi = 1: {v3:?}");
    }

    #[test]
    fn parsync_rejects_slow_processes() {
        // p1 takes steps 100 apart while p0 steps 1 apart.
        let mut b = ExecutionGraph::builder(2);
        let a = b.init(ProcessId(0));
        b.init(ProcessId(1));
        let (_, r1) = b.send(a, ProcessId(0)); // self message: fast steps
        let (_, _r2) = b.send(r1, ProcessId(1));
        let g = b.finish();
        let timed = TimedGraph::from_integer_times(&[0, 0, 1, 100]);
        let v = check_parsync(
            &g,
            &timed,
            &ParSyncParams {
                phi: 10,
                delta: 200,
            },
        );
        assert!(!v.admissible, "{v:?}");
    }
}
