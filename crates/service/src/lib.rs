//! `abc-service` — a sharded TCP trace-ingestion service with live ABC
//! monitoring.
//!
//! PR 2 made the ABC synchrony condition (Definition 4) checkable *online*
//! — [`abc_core::monitor::IncrementalChecker`] re-checks per appended event
//! at amortized near-zero cost — and the trace text format gave executions
//! a portable line serialization. This crate closes the loop the paper's
//! Section 5.3 motivates for DARTS-style VLSI clock monitoring and that
//! Fig. 3's failure-detection loop sketches at system scale: a
//! **long-running service** that ingests event streams from many concurrent
//! clients over TCP and flags `Ξ`-violations the moment the closing event
//! of a violating relevant cycle arrives, instead of after-the-fact batch
//! audits.
//!
//! Std-only by design (the build environment has no crates.io access — no
//! tokio, no mio): a listener thread accepts connections and hands each to
//! one of a fixed pool of **shard workers** (connection id → shard over
//! `std::sync::mpsc`); each worker drives its sessions with non-blocking
//! reads/writes. A session starts in the `abc-trace v1` line grammar in
//! streaming order ([`abc_sim::Trace::to_stream_text`]), parsed by
//! [`abc_sim::textio::TraceLineParser`] in its O(in-flight) streaming mode,
//! and may negotiate the **v2 binary framing** (`proto v2` handshake,
//! [`abc_sim::binio`]) — length-prefixed frames of varint-packed records
//! decoded into the *same* parser core, so both framings accept exactly
//! the same documents. Either way every event feeds a per-document
//! [`abc_core::monitor::IncrementalChecker`] — the text of a document is
//! never buffered, and with [`server::ServerConfig::prune_horizon`] set the
//! checker itself runs in bounded-memory mode (settled-prefix pruning), so
//! server memory is O(sessions + in-flight frame + prune window), never
//! O(connection lifetime).
//! Replies are `ok <seq>` / `violation <seq> <witness>` per event (v1) or
//! one coalesced `ack <through>` per ingested frame with immediate
//! violations (v2), and `end <verdict>` per document ([`proto`]); both
//! framings also answer an on-demand **margin** request (`margin\n` in v1,
//! tag `0x09` in v2) with the session's current exact max relevant-cycle
//! ratio and tightest witness. A plaintext status port serves the metrics
//! registry ([`metrics::Metrics`]) in a human format and as a Prometheus
//! text exposition (`prom` command or `GET /metrics` over HTTP), including
//! per-session margin gauges and an early-warning state driven by
//! [`server::ServerConfig::warn_margin`]; it accepts a `shutdown` command,
//! and SIGINT triggers the same graceful stop ([`signals`]).
//!
//! | Module | Contents |
//! |---|---|
//! | [`server`] | [`server::start`], [`server::ServerConfig`], shard workers, status port |
//! | `session` | (internal) per-connection state machine |
//! | [`proto`] | wire protocol: replies, [`proto::Verdict`], [`proto::offline_verdict`] |
//! | [`client`] | [`client::feed_stream_text`] / [`client::feed_stream_binary`] (`abc feed`), [`client::run_loadgen`] (`abc loadgen`), [`client::status_command`] |
//! | [`metrics`] | named counter/gauge/histogram registry; human status page + Prometheus text exposition; per-session margin gauges |
//! | [`forensics`] | violation-forensics bundles: byte-reproducible capture at latch / on `dump`, parser + pretty renderer (`abc inspect`) |
//! | [`signals`] | SIGINT → stop-flag hook |
//!
//! The `abc` CLI (in `abc-harness`) exposes all of it: `abc serve`,
//! `abc feed`, `abc loadgen`.
//!
//! # Verdict fidelity
//!
//! The server's verdict for a document is **byte-identical** to what the
//! offline monitor (`abc monitor`) reaches on the same trace:
//! [`proto::offline_verdict`] and the server render through the same
//! [`proto::Verdict`] type, and the integration tests assert equality over
//! concurrent multi-client runs. Admissibility is decided by the same
//! latched incremental checker in both places — the service adds
//! transport, sharding, and observability, not a second opinion.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod forensics;
pub mod metrics;
pub mod proto;
pub mod server;
mod session;
pub mod signals;

pub use client::{feed_stream_binary, feed_stream_text, run_loadgen, LoadgenDoc, LoadgenReport};
pub use proto::{offline_verdict, Reply, Verdict};
pub use server::{start, ServerConfig, ServerHandle};
