//! The `abc-service` wire protocol: negotiated request framings, line
//! replies.
//!
//! A session starts in the **v1 text framing**: the `abc-trace v1`
//! grammar of [`abc_sim::textio`] in **streaming order** (each delivered
//! message's `m` line immediately precedes its receive `e` line — exactly
//! what [`abc_sim::Trace::to_stream_text`] emits), optionally preceded by
//! an `xi P/Q` line selecting the monitored synchrony parameter for the
//! documents that follow. One connection may carry any number of trace
//! documents back to back; each gets a fresh incremental checker.
//!
//! Between documents a client may send [`PROTO_V2_REQUEST`] (`proto v2`)
//! to switch its *request* direction to the **v2 binary framing** of
//! [`abc_sim::binio`]: length-prefixed frames of varint-packed records
//! (`xi` travels as a record too). The switch is handshaked — the client
//! MUST wait for the [`PROTO_V2_OK`] reply before sending its first
//! frame, because any bytes already in flight would be interpreted as
//! text. Replies stay line-oriented in both framings.
//!
//! Server → client:
//!
//! * `ok <seq>` — (v1 only) event `<seq>` ingested, execution still
//!   admissible;
//! * `ack <through>` — (v2 only) every event with sequence number
//!   `<= through` has been ingested; one coalesced ack is sent per
//!   ingested frame instead of one `ok` per event;
//! * `violation <seq> <witness>` — event `<seq>` ingested and the session
//!   is latched violating (`<witness>` is the single-token
//!   [`abc_core::cycle::WireWitness`] form). Sent immediately in both
//!   framings — in v2 it precedes the ack covering `<seq>`. After the
//!   latch, v1 echoes the same latched violation per event; v2 keeps
//!   acking silently;
//! * `end <verdict>` — document complete (see [`Verdict`]; in v2 any
//!   pending ack flushes first);
//! * `margin none` / `margin <P/Q> [<witness>]` — reply to an on-demand
//!   margin request (see below): the exact current maximum
//!   relevant-cycle ratio over everything ingested so far as a `P/Q`
//!   rational, plus the single-token wire form of the tightest witness
//!   cycle attaining it when one was extracted (omitted exactly at
//!   ratio `1`, where the cheapest certificate can be a degenerate
//!   out-and-back walk). `none` means no relevant cycle exists yet;
//! * `error line <n>: <message>` / `error record <n>: <message>` —
//!   protocol violation at text line / binary record `<n>`; the
//!   connection closes after the reply, the server stays up.
//!
//! Clients request a margin sample with the [`MARGIN_REQUEST`] line
//! (v1), or the margin record (tag `0x09`,
//! [`abc_sim::binio::WireRecord::Margin`]) inside any frame (v2). Both
//! are accepted mid-document and between documents; the reply is
//! immediate and — in v2 — precedes the ack of the frame that carried
//! the request. On a server running bounded-memory pruning with margin
//! tracking disabled (`margin_tracking = false` in the config) a margin
//! request is a protocol error.
//!
//! The greeting ([`GREETING`]) is sent once per connection and
//! advertises both framings.

use std::fmt;
use std::str::FromStr;

use abc_core::cycle::WitnessSummary;
use abc_core::Xi;
use abc_sim::Trace;

/// Highest protocol version the server speaks (v1 text remains accepted;
/// see [`GREETING`]).
pub const PROTOCOL_VERSION: &str = "v2";

/// The per-connection greeting line, advertising every accepted request
/// framing. Clients should match the `abc-service v` prefix rather than
/// the exact string.
pub const GREETING: &str = "abc-service v2 protocols=v1,v2";

/// Client request line switching the session's request framing to binary
/// frames. Must be sent between documents, and the client MUST wait for
/// the [`PROTO_V2_OK`] reply before sending its first frame.
pub const PROTO_V2_REQUEST: &str = "proto v2";

/// Server acknowledgement of [`PROTO_V2_REQUEST`]; the very next request
/// byte begins a binary frame.
pub const PROTO_V2_OK: &str = "proto v2 ok";

/// Client request pinning the (default) v1 text framing — a handshaked
/// no-op, for symmetric client code.
pub const PROTO_V1_REQUEST: &str = "proto v1";

/// Server acknowledgement of [`PROTO_V1_REQUEST`].
pub const PROTO_V1_OK: &str = "proto v1 ok";

/// Client request (v1 text framing) for an on-demand margin sample;
/// accepted both mid-document and between documents. The v2 counterpart
/// is the margin record ([`abc_sim::binio::WireRecord::Margin`]).
pub const MARGIN_REQUEST: &str = "margin";

/// The final verdict of one ingested trace document — rendered identically
/// by the server (`end <verdict>` reply), the `abc feed` client, and the
/// offline monitor ([`offline_verdict`]), so "byte-identical verdicts"
/// is a meaningful, testable property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every appended event kept the execution admissible.
    Admissible {
        /// Number of events ingested.
        events: usize,
    },
    /// The monitor latched a violating relevant cycle.
    Violation {
        /// Index of the trace event whose append closed the first
        /// violating cycle.
        at_event: usize,
        /// The witness summary.
        witness: WitnessSummary,
    },
}

impl Verdict {
    /// Whether this verdict is a violation.
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violation { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Admissible { events } => write!(f, "admissible events={events}"),
            Verdict::Violation { at_event, witness } => {
                write!(f, "violation at_event={at_event} {}", witness.wire())
            }
        }
    }
}

impl FromStr for Verdict {
    type Err = String;

    fn from_str(s: &str) -> Result<Verdict, String> {
        if let Some(rest) = s.strip_prefix("admissible events=") {
            return Ok(Verdict::Admissible {
                events: rest.parse().map_err(|e| format!("events: {e}"))?,
            });
        }
        if let Some(rest) = s.strip_prefix("violation at_event=") {
            let (at, wire) = rest
                .split_once(' ')
                .ok_or_else(|| format!("verdict missing witness: {s:?}"))?;
            return Ok(Verdict::Violation {
                at_event: at.parse().map_err(|e| format!("at_event: {e}"))?,
                witness: WitnessSummary::from_wire(wire)?,
            });
        }
        Err(format!("unparseable verdict {s:?}"))
    }
}

/// A parsed server reply line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `ok <seq>`.
    Ok {
        /// The acknowledged event sequence number.
        seq: usize,
    },
    /// `ack <through>` — every event with sequence number `<= through`
    /// has been ingested (v2 coalesced acknowledgement).
    Ack {
        /// The highest acknowledged event sequence number.
        through: usize,
    },
    /// `violation <seq> <wire-witness>`.
    Violation {
        /// The latched event sequence number.
        seq: usize,
        /// The wire-form witness (kept as text; parse with
        /// [`WitnessSummary::from_wire`] when structure is needed).
        witness: String,
    },
    /// `end <verdict>`.
    End(Verdict),
    /// `margin none` / `margin <P/Q> [<wire-witness>]` — an on-demand
    /// margin sample (see the module docs).
    Margin {
        /// The exact current maximum relevant-cycle ratio as its `P/Q`
        /// wire text (parse with `str::parse::<abc_rational::Ratio>`
        /// when arithmetic is needed); `None` when no relevant cycle
        /// exists yet.
        ratio: Option<String>,
        /// The wire-form witness of a tightest cycle attaining the
        /// ratio, when one was extracted (absent exactly at ratio `1`).
        witness: Option<String>,
    },
    /// `error …`.
    Error {
        /// The error text (everything after `error `).
        message: String,
    },
}

impl Reply {
    /// Parses one server reply line.
    ///
    /// # Errors
    ///
    /// A message describing the malformed line.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("ok ") {
            return Ok(Reply::Ok {
                seq: rest.parse().map_err(|e| format!("ok seq: {e}"))?,
            });
        }
        if let Some(rest) = line.strip_prefix("ack ") {
            return Ok(Reply::Ack {
                through: rest.parse().map_err(|e| format!("ack through: {e}"))?,
            });
        }
        if let Some(rest) = line.strip_prefix("violation ") {
            let (seq, witness) = rest
                .split_once(' ')
                .ok_or_else(|| format!("violation reply missing witness: {line:?}"))?;
            return Ok(Reply::Violation {
                seq: seq.parse().map_err(|e| format!("violation seq: {e}"))?,
                witness: witness.to_string(),
            });
        }
        if let Some(rest) = line.strip_prefix("end ") {
            return Ok(Reply::End(rest.parse()?));
        }
        if let Some(rest) = line.strip_prefix("margin ") {
            if rest == "none" {
                return Ok(Reply::Margin {
                    ratio: None,
                    witness: None,
                });
            }
            let (ratio, witness) = match rest.split_once(' ') {
                Some((r, w)) => (r, Some(w.to_string())),
                None => (rest, None),
            };
            if ratio.is_empty() {
                return Err(format!("margin reply missing ratio: {line:?}"));
            }
            return Ok(Reply::Margin {
                ratio: Some(ratio.to_string()),
                witness,
            });
        }
        if let Some(rest) = line.strip_prefix("error ") {
            return Ok(Reply::Error {
                message: rest.to_string(),
            });
        }
        Err(format!("unparseable reply {line:?}"))
    }
}

/// The verdict the *offline* monitor reaches on `trace` for `xi` — the
/// reference every online (server-side) verdict must match byte for byte.
///
/// # Errors
///
/// The rendered [`abc_core::check::CheckError`] if `Ξ` exceeds the
/// monitor's integer range.
pub fn offline_verdict(trace: &Trace, xi: &Xi) -> Result<Verdict, String> {
    let (mon, at) = trace
        .replay_into_monitor_until_violation(xi)
        .map_err(|e| e.to_string())?;
    Ok(match at {
        None => Verdict::Admissible {
            events: trace.events().len(),
        },
        Some(at_event) => {
            let Some(witness) = mon.violation() else {
                // Defensive: a latched monitor accompanies the index by
                // construction; surface corruption instead of aborting.
                return Err("internal: monitor latched no violation witness".to_string());
            };
            Verdict::Violation {
                at_event,
                witness: witness.summarize(mon.graph()),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_round_trips() {
        let v = Verdict::Admissible { events: 120 };
        assert_eq!(v.to_string().parse::<Verdict>().unwrap(), v);
        assert!("garbage".parse::<Verdict>().is_err());
        assert!("violation at_event=3".parse::<Verdict>().is_err());
    }

    #[test]
    fn replies_parse() {
        assert_eq!(Reply::parse("ok 17").unwrap(), Reply::Ok { seq: 17 });
        assert_eq!(
            Reply::parse("ack 999").unwrap(),
            Reply::Ack { through: 999 }
        );
        assert_eq!(
            Reply::parse("end admissible events=4").unwrap(),
            Reply::End(Verdict::Admissible { events: 4 })
        );
        assert_eq!(
            Reply::parse("error line 3: nope").unwrap(),
            Reply::Error {
                message: "line 3: nope".into()
            }
        );
        assert_eq!(
            Reply::parse("margin none").unwrap(),
            Reply::Margin {
                ratio: None,
                witness: None
            }
        );
        assert_eq!(
            Reply::parse("margin 1").unwrap(),
            Reply::Margin {
                ratio: Some("1".into()),
                witness: None
            }
        );
        assert_eq!(
            Reply::parse("margin 3/2 cyc:v1;...").unwrap(),
            Reply::Margin {
                ratio: Some("3/2".into()),
                witness: Some("cyc:v1;...".into())
            }
        );
        assert!(Reply::parse("hmm").is_err());
    }
}
