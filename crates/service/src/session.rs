//! One client connection: non-blocking request framing (v1 text lines or
//! negotiated v2 binary frames), streaming trace parsing, an incremental
//! ABC checker per document, and chunked vectored reply buffering.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use abc_core::monitor::{IncrementalChecker, MarginReport, MonitorStats};
use abc_core::{EventId, ProcessId, Xi};
use abc_rational::Ratio;
use abc_sim::binio::{FrameAssembler, RecordDecoder, WireRecord};
use abc_sim::textio::{EventFeed, LineAssembler, ParsedLine, TraceLineParser, TraceTextError};

use crate::forensics::{monitor_counter_pairs, wire_record_line, ForensicsBundle};
use crate::metrics::{ratio_to_basis_points, Metrics, MARGIN_NONE};
use crate::server::ServerConfig;

// Flight-recorder hooks (no-ops unless the embedding process called
// `abc_obs::enable`): RAII spans cover only per-frame / per-drain work,
// and on the batched v2 path the record/feed counters flush as one
// delta add per frame (alongside `flush_event_counters`) rather than
// one recorder touch per record.
static OBS_CHECKER_FEED: abc_obs::CounterDef = abc_obs::CounterDef::new("service.checker_feed");
static OBS_FRAMES: abc_obs::CounterDef = abc_obs::CounterDef::new("service.frame_decodes");
static OBS_RECORDS: abc_obs::CounterDef = abc_obs::CounterDef::new("service.records");

/// Soft cap on buffered reply bytes: when a client stops draining replies,
/// the session stops reading new requests until the buffer shrinks — the
/// slow client throttles itself, not the server.
const OUT_SOFT_CAP: usize = 1 << 20;

/// Reads per tick per session, so one firehose client cannot starve its
/// shard siblings within a single scheduling round.
const MAX_READS_PER_TICK: usize = 16;

/// Per-session read buffer. Reused for the connection's lifetime (boxed so
/// idle sessions don't widen the shard's stack frames).
const READ_BUF_LEN: usize = 64 * 1024;

/// Reply-buffer chunk size. Chunks recycle through a small spare pool, so
/// a steady-state session allocates no reply memory at all.
const OUT_CHUNK: usize = 16 * 1024;

/// Recycled empty chunks kept per session.
const OUT_SPARE_CAP: usize = 4;

/// Reply chunks submitted per `writev`.
const OUT_MAX_IOV: usize = 8;

/// Microseconds since `t0`, saturating (histogram observations).
fn micros_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The request framing the session currently decodes.
enum RxMode {
    /// `abc-trace v1` text lines (the initial mode).
    Text(LineAssembler),
    /// `abc-trace v2` length-prefixed binary frames, after a completed
    /// `proto v2` handshake.
    Binary(FrameAssembler),
}

/// Buffered replies as a queue of fixed-size chunks, drained with vectored
/// writes. Compared to one flat `Vec`, draining pops whole chunks instead
/// of memmoving a tail, and chunk recycling keeps the hot ingest path
/// allocation-free.
struct OutBuf {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written.
    head_pos: usize,
    /// Total unwritten bytes across all chunks.
    pending: usize,
    spare: Vec<Vec<u8>>,
}

impl OutBuf {
    fn new() -> OutBuf {
        OutBuf {
            chunks: VecDeque::new(),
            head_pos: 0,
            pending: 0,
            spare: Vec::new(),
        }
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn tail(&mut self) -> &mut Vec<u8> {
        let need_new = match self.chunks.back() {
            Some(c) => c.len() >= OUT_CHUNK,
            None => true,
        };
        if need_new {
            let c = self
                .spare
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(OUT_CHUNK));
            self.chunks.push_back(c);
        }
        self.chunks
            .back_mut()
            .expect("a tail chunk was just ensured")
    }

    fn push_str(&mut self, s: &str) {
        self.tail().extend_from_slice(s.as_bytes());
        self.pending += s.len();
    }

    fn push_fmt(&mut self, args: std::fmt::Arguments<'_>) {
        let c = self.tail();
        let before = c.len();
        // `io::Write` on `Vec<u8>` cannot fail.
        let _ = c.write_fmt(args);
        let delta = c.len() - before;
        self.pending += delta;
    }

    /// Fills `slices` with the unwritten chunk tails, front first.
    fn ioslices<'a>(&'a self, slices: &mut [IoSlice<'a>; OUT_MAX_IOV]) -> usize {
        let mut k = 0;
        for (i, c) in self.chunks.iter().enumerate() {
            let Some(slot) = slices.get_mut(k) else {
                break;
            };
            let s: &[u8] = if i == 0 {
                c.get(self.head_pos..).unwrap_or(&[])
            } else {
                c
            };
            if !s.is_empty() {
                *slot = IoSlice::new(s);
                k += 1;
            }
        }
        k
    }

    /// Marks `n` bytes written, recycling fully drained chunks.
    fn consume(&mut self, mut n: usize) {
        self.pending -= n;
        while n > 0
            || self
                .chunks
                .front()
                .is_some_and(|c| c.len() == self.head_pos)
        {
            let avail = match self.chunks.front() {
                Some(c) => c.len() - self.head_pos,
                None => break,
            };
            if n >= avail {
                n -= avail;
                let Some(mut c) = self.chunks.pop_front() else {
                    break; // unreachable: `avail` came from this chunk
                };
                c.clear();
                self.head_pos = 0;
                if self.spare.len() < OUT_SPARE_CAP {
                    self.spare.push(c);
                }
            } else {
                self.head_pos += n;
                n = 0;
            }
        }
    }
}

/// The per-document ingestion state.
///
/// The `Running` payload is boxed: `drive_document` moves the state out of
/// the session and back **per record**, and the parser + checker are ~1.2 KB
/// inline — boxing turns that round trip into two pointer moves.
enum DocState {
    /// Between documents: accepting `xi …` / `proto …` requests or the
    /// start of a trace document.
    Idle,
    /// Mid-document.
    Running(Box<RunningDoc>),
}

/// Mid-document state: the shared validation parser plus the live monitor.
struct RunningDoc {
    parser: TraceLineParser,
    /// Created at the `faulty` line; dropped at `end` (memory is per
    /// in-flight document, not per connection lifetime).
    checker: Option<IncrementalChecker>,
    /// `(latch_seq, wire_witness)` once the monitor latched. After the
    /// latch the checker is no longer fed — the verdict can never
    /// change, so remaining events only count (and, in v1, echo).
    latched: Option<(usize, String)>,
    /// The latched witness's exact ratio, kept so `margin` requests
    /// after the latch (when the checker is dropped) still answer with
    /// the frozen margin.
    margin_frozen: Option<Ratio>,
}

/// Live counters shared with the server's session table (status page).
#[derive(Clone, Debug)]
pub(crate) struct SessionCounters {
    pub events: Arc<AtomicU64>,
    pub violations: Arc<AtomicU64>,
    /// Monitor-memory gauges: events/arcs currently live in the open
    /// document's checker, and events compacted away so far (across the
    /// connection's documents).
    pub live_events: Arc<AtomicU64>,
    pub live_arcs: Arc<AtomicU64>,
    pub pruned_events: Arc<AtomicU64>,
    /// Last exactly computed margin of the open document, in basis
    /// points ([`crate::metrics::ratio_to_basis_points`]);
    /// [`MARGIN_NONE`] until an exact probe runs.
    pub margin_bp: Arc<AtomicU64>,
    /// 1 once the open document's margin crossed the warn threshold.
    pub warning: Arc<AtomicU64>,
}

impl SessionCounters {
    pub(crate) fn new() -> SessionCounters {
        SessionCounters {
            events: Arc::new(AtomicU64::new(0)),
            violations: Arc::new(AtomicU64::new(0)),
            live_events: Arc::new(AtomicU64::new(0)),
            live_arcs: Arc::new(AtomicU64::new(0)),
            pruned_events: Arc::new(AtomicU64::new(0)),
            margin_bp: Arc::new(AtomicU64::new(MARGIN_NONE)),
            warning: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Cap on forensics timeline / margin-history entries kept per session
/// (most recent win; totals keep counting).
const FORENSICS_LOG_CAP: usize = 256;

/// Per-session forensics capture, present only when the server was
/// started with a forensics directory (`None` = feature off, zero cost on
/// the ingest path). Everything recorded here is **input-derived** — wire
/// records, request numbers, monitor counters — never timestamps or peer
/// addresses, so the rendered bundle is byte-reproducible from the same
/// document bytes and server flags (see [`crate::forensics`]).
struct Forensics {
    dir: std::path::PathBuf,
    /// Most recent wire records, as canonical v1 text lines (binary
    /// records render through [`wire_record_line`]).
    tail: VecDeque<String>,
    tail_cap: usize,
    tail_total: u64,
    /// `(request#, ratio-or-none)` per client-driven exact margin sample
    /// (`margin` requests and the latch freeze). Gated warn probes are
    /// excluded — their schedule depends on read chunking.
    margins: VecDeque<(u64, String)>,
    margins_total: u64,
    /// `(request#, entry)` decision timeline: document starts, topology,
    /// prunes, the latch, document ends.
    timeline: VecDeque<(u64, String)>,
    timeline_total: u64,
    /// The latched violation, surviving the checker drop.
    latch: Option<(u64, String)>,
    /// Monitor counters frozen at the latch (the checker is dropped right
    /// after); refreshed from the live checker on explicit dumps.
    stats: MonitorStats,
    /// Dump ordinal: bundles are named `session-<id>-<ordinal>.forensics`.
    dumps: u64,
}

impl Forensics {
    fn new(dir: std::path::PathBuf, tail_cap: usize) -> Forensics {
        Forensics {
            dir,
            tail: VecDeque::new(),
            tail_cap: tail_cap.max(1),
            tail_total: 0,
            margins: VecDeque::new(),
            margins_total: 0,
            timeline: VecDeque::new(),
            timeline_total: 0,
            latch: None,
            stats: MonitorStats::default(),
            dumps: 0,
        }
    }

    fn record_wire(&mut self, line: &str) {
        if self.tail.len() >= self.tail_cap {
            self.tail.pop_front();
        }
        self.tail.push_back(line.to_string());
        self.tail_total += 1;
    }

    fn record_margin(&mut self, at: usize, ratio: String) {
        if self.margins.len() >= FORENSICS_LOG_CAP {
            self.margins.pop_front();
        }
        self.margins.push_back((at as u64, ratio));
        self.margins_total += 1;
    }

    fn note(&mut self, at: usize, entry: String) {
        if self.timeline.len() >= FORENSICS_LOG_CAP {
            self.timeline.pop_front();
        }
        self.timeline.push_back((at as u64, entry));
        self.timeline_total += 1;
    }
}

pub(crate) struct Session {
    pub(crate) id: u64,
    stream: TcpStream,
    rx: RxMode,
    /// Delta-decoder state for binary event times (reset per document by
    /// the `processes` record itself).
    decoder: RecordDecoder,
    /// Reusable scratch holding the frame being decoded.
    frame_buf: Vec<u8>,
    /// Reusable socket read buffer.
    read_buf: Box<[u8]>,
    doc: DocState,
    xi: Xi,
    max_processes: usize,
    max_frame_len: usize,
    /// Bounded-memory monitoring: prune each document's checker so at most
    /// ~`2·horizon` events stay live (`None` = exact unbounded mode).
    prune_horizon: Option<usize>,
    /// Early-warning margin threshold (see
    /// [`ServerConfig::warn_margin`]).
    warn_margin: Option<Ratio>,
    /// Whether pruning monitors keep margin signatures (see
    /// [`ServerConfig::margin_tracking`]).
    margin_tracking: bool,
    /// Whether the open document's warning already fired (at most one
    /// warning per document).
    warned: bool,
    /// Request count (`lines_in`) at which the next *drain-gated* exact
    /// margin probe may run. Doubled after each probe, so an unresolved
    /// `--warn-margin` threshold (cheap bound above it, exact margin
    /// below) costs `O(log n)` exact probes per document instead of one
    /// per ingested batch. On-demand `margin` requests bypass this gate.
    probe_gate: usize,
    /// Pruned-event count already folded into the session counter for the
    /// open document (the monitor reports a per-document running total).
    doc_pruned_reported: usize,
    /// 1-based count of requests received (error replies cite it: text
    /// lines since the connection opened, or binary records since the
    /// framing switch).
    lines_in: usize,
    /// Highest event seq ingested since the last `ack` reply (v2 only);
    /// flushed as one coalesced `ack <through>` per fully ingested frame.
    unacked: Option<usize>,
    /// Events ingested but not yet folded into the shared atomic counters
    /// (see [`Session::flush_event_counters`]).
    doc_events_pending: u64,
    out: OutBuf,
    /// Half-closed: no more requests will arrive; die once `out` drains.
    eof: bool,
    /// Fatal protocol error queued; die once `out` drains.
    poisoned: bool,
    pub(crate) dead: bool,
    pub(crate) counters: SessionCounters,
    /// Violation-forensics capture (boxed: ~5 pointers of cold state, and
    /// `None` entirely unless the server configured a forensics dir).
    forensics: Option<Box<Forensics>>,
}

impl Session {
    pub(crate) fn new(
        id: u64,
        stream: TcpStream,
        config: &ServerConfig,
        counters: SessionCounters,
    ) -> Session {
        let mut s = Session {
            id,
            stream,
            rx: RxMode::Text(LineAssembler::new(config.max_line_len)),
            decoder: RecordDecoder::new(),
            frame_buf: Vec::new(),
            read_buf: vec![0u8; READ_BUF_LEN].into_boxed_slice(),
            doc: DocState::Idle,
            xi: config.xi.clone(),
            max_processes: config.max_processes,
            max_frame_len: config.max_frame_len,
            prune_horizon: config.prune_horizon,
            warn_margin: config.warn_margin.clone(),
            margin_tracking: config.margin_tracking,
            warned: false,
            probe_gate: 0,
            doc_pruned_reported: 0,
            lines_in: 0,
            unacked: None,
            doc_events_pending: 0,
            out: OutBuf::new(),
            eof: false,
            poisoned: false,
            dead: false,
            counters,
            forensics: config
                .forensics_dir
                .as_ref()
                .map(|dir| Box::new(Forensics::new(dir.clone(), config.forensics_tail))),
        };
        s.reply_fmt(format_args!("{}\n", crate::proto::GREETING));
        s
    }

    fn binary(&self) -> bool {
        matches!(self.rx, RxMode::Binary(_))
    }

    fn reply(&mut self, line: &str) {
        self.out.push_str(line);
    }

    fn reply_fmt(&mut self, args: std::fmt::Arguments<'_>) {
        self.out.push_fmt(args);
    }

    /// Queues the coalesced `ack <through>` covering every event ingested
    /// since the previous ack (no-op when nothing is pending).
    fn flush_ack(&mut self, metrics: &Metrics) {
        if let Some(through) = self.unacked.take() {
            self.reply_fmt(format_args!("ack {through}\n"));
            metrics.acks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds the open document's monitor `pruned_events` running total into
    /// the session-lifetime counter (exactly once per pruned event).
    /// Folds locally accumulated event counts into the shared atomics.
    /// Called at reply boundaries (frame ack, text drain, latch, `end`,
    /// error) so the status-port counters are exact whenever a client can
    /// observe progress — without paying two atomic RMWs per event.
    fn flush_event_counters(&mut self, metrics: &Metrics) {
        if self.doc_events_pending > 0 {
            OBS_CHECKER_FEED.add(self.doc_events_pending);
            metrics
                .events
                .fetch_add(self.doc_events_pending, Ordering::Relaxed);
            self.counters
                .events
                .fetch_add(self.doc_events_pending, Ordering::Relaxed);
            self.doc_events_pending = 0;
        }
    }

    /// Refreshes the monitor-memory gauges from the open document's
    /// checker (batched alongside [`Session::flush_event_counters`]).
    fn refresh_gauges(&mut self) {
        let snap = if let DocState::Running(doc) = &self.doc {
            doc.checker.as_ref().map(|mon| {
                (
                    mon.live_events() as u64,
                    mon.live_arcs() as u64,
                    mon.stats().pruned_events,
                )
            })
        } else {
            None
        };
        if let Some((live, arcs, pruned)) = snap {
            self.counters.live_events.store(live, Ordering::Relaxed);
            self.counters.live_arcs.store(arcs, Ordering::Relaxed);
            self.note_pruned(pruned);
        }
    }

    fn note_pruned(&mut self, doc_total: usize) {
        let delta = doc_total.saturating_sub(self.doc_pruned_reported);
        if delta > 0 {
            self.counters
                .pruned_events
                .fetch_add(delta as u64, Ordering::Relaxed);
            self.doc_pruned_reported = doc_total;
        }
    }

    /// Resets the per-document margin state (gauges, warning latch) at
    /// the start of a fresh document.
    fn begin_document(&mut self) {
        self.doc_pruned_reported = 0;
        self.warned = false;
        self.probe_gate = 0;
        self.counters
            .margin_bp
            .store(MARGIN_NONE, Ordering::Relaxed);
        self.counters.warning.store(0, Ordering::Relaxed);
        let framing = if self.binary() { "binary" } else { "text" };
        let at = self.lines_in;
        if let Some(fx) = self.forensics.as_mut() {
            fx.note(at, format!("document start ({framing} framing)"));
        }
    }

    /// Whether this session can answer exact margin probes: always when
    /// unpruned (the checker keeps its full graph mirror), and under
    /// pruning only when margin tracking kept the boundary signatures.
    fn can_probe_margin(&self) -> bool {
        self.prune_horizon.is_none() || self.margin_tracking
    }

    /// Publishes one exactly computed margin: per-session gauge plus the
    /// workspace-wide histogram. Gauges move only on exact computations
    /// — the cheap upper bound never reaches them.
    fn publish_margin(&mut self, ratio: &Ratio, metrics: &Metrics) {
        let bp = ratio_to_basis_points(ratio);
        self.counters.margin_bp.store(bp, Ordering::Relaxed);
        metrics.margin_hist.observe(bp);
    }

    /// Flips the per-session warning state (at most once per document)
    /// when an exactly computed margin from a still-admissible monitor
    /// reaches the `--warn-margin` threshold. Post-latch samples never
    /// reach this: warnings fire strictly before any latch.
    fn maybe_warn(&mut self, ratio: &Ratio, metrics: &Metrics) {
        if self.warned {
            return;
        }
        let Some(threshold) = &self.warn_margin else {
            return;
        };
        if ratio >= threshold {
            self.warned = true;
            self.counters.warning.store(1, Ordering::Relaxed);
            metrics.margin_warnings.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Handles an on-demand margin request (the v1 `margin` line / the
    /// v2 margin record): replies `margin none` or
    /// `margin <P/Q> [<wire-witness>]` with the exact current margin,
    /// updating the margin gauge and histogram. Between documents (no
    /// cycles yet) the reply is `margin none`; after a latch the margin
    /// is frozen at the latched witness's ratio.
    fn margin_request(&mut self, metrics: &Metrics) {
        if !self.can_probe_margin() {
            self.protocol_error(
                "margin unavailable: server prunes without margin tracking",
                metrics,
            );
            return;
        }
        // Probe first (immutable borrow of the document state), then
        // publish and reply (mutable borrows of the session). `live` is
        // true when the sample came from a still-admissible checker —
        // only those samples may arm the early warning.
        let probed: Result<Option<(MarginReport, bool)>, String> = match &self.doc {
            DocState::Idle => Ok(None),
            DocState::Running(doc) => match (&doc.checker, &doc.margin_frozen, &doc.latched) {
                (Some(mon), _, _) => mon
                    .current_margin()
                    .map(|m| m.map(|rep| (rep, true)))
                    .map_err(|e| format!("margin: {e}")),
                (None, Some(frozen), Some((_, wire))) => Ok(Some((
                    MarginReport {
                        ratio: frozen.clone(),
                        witness: match abc_core::cycle::WitnessSummary::from_wire(wire) {
                            Ok(w) => Some(w),
                            Err(_) => None, // defensive: the latch wrote this wire form
                        },
                    },
                    false,
                ))),
                // Before the topology there is no checker and no cycles.
                (None, _, _) => Ok(None),
            },
        };
        let at = self.lines_in;
        match probed {
            Err(m) => self.protocol_error(&m, metrics),
            Ok(None) => {
                if let Some(fx) = self.forensics.as_mut() {
                    fx.record_margin(at, "none".to_string());
                }
                self.reply("margin none\n");
            }
            Ok(Some((rep, live))) => {
                self.publish_margin(&rep.ratio, metrics);
                if let Some(fx) = self.forensics.as_mut() {
                    fx.record_margin(at, rep.ratio.to_string());
                }
                if live {
                    self.maybe_warn(&rep.ratio, metrics);
                }
                match &rep.witness {
                    Some(w) => {
                        self.reply_fmt(format_args!("margin {} {}\n", rep.ratio, w.wire()));
                    }
                    None => self.reply_fmt(format_args!("margin {}\n", rep.ratio)),
                }
            }
        }
    }

    /// The amortized early-warning gate, evaluated after every ingested
    /// event but gated by a doubling threshold (`probe_gate`): an
    /// evaluation at `lines_in = g` schedules the next one at `2g`, so a
    /// document of `n` events pays for `O(log n)` evaluations total —
    /// each a cheap `O(live arcs)` margin upper bound, escalating to the
    /// exact probe only when the bound reaches the `--warn-margin`
    /// threshold. Starting the gate at zero means the first evaluations
    /// land while the live window is still tiny, so a workload that
    /// crosses the threshold early latches its warning before the exact
    /// probe ever sees a large graph. The warning flips at most once per
    /// document, strictly before any latch (the monitor stays admissible
    /// while its margin is below `Ξ`, and a useful threshold sits below
    /// `Ξ`). After the flip the gate is a single flag check per event.
    fn check_warn_margin(&mut self, metrics: &Metrics) {
        // Ordered cheapest-first: per-event calls must cost a couple of
        // integer/flag compares while gated or already warned.
        if self.warned || self.lines_in < self.probe_gate || !self.can_probe_margin() {
            return;
        }
        let Some(threshold) = self.warn_margin.clone() else {
            return;
        };
        let exact: Option<Ratio> = {
            let DocState::Running(doc) = &self.doc else {
                return;
            };
            let Some(mon) = doc.checker.as_ref() else {
                return;
            };
            match mon.margin_upper_bound() {
                // The cheap bound certifies the margin is below the
                // threshold: skip the exact probe entirely.
                Some(bound) if bound >= threshold => {
                    // Overflow in the exact probe (pathological sizes)
                    // is treated as "no sample" — no warning either way.
                    mon.current_margin()
                        .ok()
                        .flatten()
                        .map(|report| report.ratio)
                }
                _ => None,
            }
        };
        // Every evaluation that reached the checker did real work (at
        // least the bound scan), so every one advances the gate — bound
        // scans and exact probes are both amortized to `O(log n)` per
        // document.
        self.probe_gate = self
            .lines_in
            .saturating_mul(2)
            .max(self.lines_in.saturating_add(1));
        let Some(ratio) = exact else { return };
        self.publish_margin(&ratio, metrics);
        self.maybe_warn(&ratio, metrics);
    }

    fn protocol_error(&mut self, message: &str, metrics: &Metrics) {
        self.flush_event_counters(metrics);
        let unit = if self.binary() { "record" } else { "line" };
        // Events ingested before the failure stay unacknowledged: the
        // session is terminal, so the client must not treat them as safely
        // checked.
        self.unacked = None;
        let n = self.lines_in;
        self.reply_fmt(format_args!("error {unit} {n}: {message}\n"));
        metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
        self.poisoned = true;
    }

    /// Drives the session once: flush pending replies, read whatever
    /// arrived, process complete requests, flush again. Returns whether any
    /// byte moved (the shard loop sleeps only when nothing did).
    pub(crate) fn tick(&mut self, metrics: &Metrics) -> bool {
        let mut work = self.try_flush(metrics);
        if !self.dead && !self.poisoned && !self.eof && self.out.pending() < OUT_SOFT_CAP {
            work |= self.try_read(metrics);
            work |= self.try_flush(metrics);
        }
        if (self.eof || self.poisoned) && self.out.pending() == 0 {
            self.dead = true;
        }
        work
    }

    fn try_read(&mut self, metrics: &Metrics) -> bool {
        let mut work = false;
        for _ in 0..MAX_READS_PER_TICK {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    self.handle_request_eof(metrics);
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    work = true;
                    metrics.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    let stop = if self.binary() {
                        self.ingest_binary(n, metrics)
                    } else {
                        self.ingest_text(n, metrics)
                    };
                    if stop || self.poisoned || self.out.pending() >= OUT_SOFT_CAP {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        work
    }

    /// End of requests. Text: a final line without a trailing newline is
    /// still a line (feed clients may half-close right after `end`).
    /// Binary: a partial frame at EOF is a protocol error.
    fn handle_request_eof(&mut self, metrics: &Metrics) {
        if self.binary() {
            self.drain_frames(metrics);
            let leftover = {
                let RxMode::Binary(frames) = &self.rx else {
                    return; // defensive: mode was checked above
                };
                frames.finish()
            };
            if let Err(m) = leftover {
                if !self.poisoned {
                    self.lines_in += 1;
                    self.protocol_error(&m, metrics);
                }
            }
        } else {
            let finished = {
                let RxMode::Text(assembler) = &mut self.rx else {
                    return; // defensive: mode was checked above
                };
                assembler.finish()
            };
            self.drain_lines(metrics);
            if let Err(e) = finished {
                if !self.poisoned {
                    self.lines_in += 1;
                    self.protocol_error(&e.message, metrics);
                }
            }
        }
    }

    /// Feeds `n` fresh bytes through the text path; `true` means stop
    /// reading this tick.
    fn ingest_text(&mut self, n: usize, metrics: &Metrics) -> bool {
        let pushed = {
            let RxMode::Text(assembler) = &mut self.rx else {
                return false; // defensive: mode was checked by the caller
            };
            assembler.push(self.read_buf.get(..n).unwrap_or(&[]))
        };
        // Lines completed before a failure point still process (and
        // number) normally; only then is the offending oversized/invalid
        // line itself counted.
        self.drain_lines(metrics);
        if let Err(e) = pushed {
            if !self.poisoned {
                self.lines_in += 1;
                self.protocol_error(&e.message, metrics);
            }
            return true;
        }
        false
    }

    /// Feeds `n` fresh bytes through the binary path; `true` means stop
    /// reading this tick.
    fn ingest_binary(&mut self, n: usize, metrics: &Metrics) -> bool {
        let pushed = {
            let RxMode::Binary(frames) = &mut self.rx else {
                return false; // defensive: mode was checked by the caller
            };
            frames.push(self.read_buf.get(..n).unwrap_or(&[]))
        };
        if let Err(m) = pushed {
            // An oversized length prefix is rejected from the prefix
            // alone, before any payload buffers.
            if !self.poisoned {
                self.lines_in += 1;
                self.protocol_error(&m, metrics);
            }
            return true;
        }
        self.drain_frames(metrics);
        self.poisoned
    }

    fn drain_lines(&mut self, metrics: &Metrics) {
        let t0 = Instant::now();
        let lines_before = self.lines_in;
        loop {
            if self.poisoned || self.binary() {
                // A completed `proto v2` handshake leaves no buffered
                // lines (the switch refuses otherwise).
                break;
            }
            let line = {
                let RxMode::Text(assembler) = &mut self.rx else {
                    break; // defensive: mode was checked above
                };
                match assembler.next_line() {
                    Some(l) => l,
                    None => break,
                }
            };
            self.lines_in += 1;
            self.process_line(&line, metrics);
            // Per-line warn-gate evaluation: a flag/integer check while
            // gated, so early threshold crossings latch on a small window.
            self.check_warn_margin(metrics);
        }
        // Per-drain (not per-line) counter/gauge settlement — the v1
        // analogue of the per-frame flush in `process_frame`.
        self.flush_event_counters(metrics);
        self.refresh_gauges();
        if self.lines_in > lines_before {
            metrics.ingest_hist.observe(micros_since(t0));
            self.check_warn_margin(metrics);
        }
    }

    fn drain_frames(&mut self, metrics: &Metrics) {
        while !self.poisoned {
            let got = {
                let RxMode::Binary(frames) = &mut self.rx else {
                    break; // defensive: mode was checked by the caller
                };
                frames.next_frame_into(&mut self.frame_buf)
            };
            match got {
                Ok(true) => {
                    // Move the scratch out so the decode loop can queue
                    // replies through `&mut self`.
                    let frame = std::mem::take(&mut self.frame_buf);
                    self.process_frame(&frame, metrics);
                    self.frame_buf = frame;
                }
                Ok(false) => break,
                Err(m) => {
                    self.lines_in += 1;
                    self.protocol_error(&m, metrics);
                    break;
                }
            }
        }
    }

    /// Decodes and applies every record of one frame, then flushes the
    /// frame's coalesced ack (violation and `end` replies were already
    /// queued in record order, so they precede it).
    fn process_frame(&mut self, payload: &[u8], metrics: &Metrics) {
        let _span = abc_obs::span("service.frame_decode");
        OBS_FRAMES.add(1);
        let lines_before = self.lines_in;
        let t0 = Instant::now();
        metrics.frames.fetch_add(1, Ordering::Relaxed);
        let mut decoder = std::mem::take(&mut self.decoder);
        let structural = decoder.decode_frame(payload, &mut |rec| {
            self.handle_record(rec, metrics);
            // Per-record warn-gate evaluation (see `check_warn_margin`):
            // a flag/integer check while gated, so early threshold
            // crossings latch on a small window even when a frame batches
            // thousands of records.
            self.check_warn_margin(metrics);
            !self.poisoned
        });
        self.decoder = decoder;
        if let Err(m) = structural {
            if !self.poisoned {
                self.lines_in += 1;
                self.protocol_error(&m, metrics);
            }
        }
        OBS_RECORDS.add((self.lines_in - lines_before) as u64);
        // Counters/gauges settle before the ack covering the frame is
        // queued, so a client observing the ack sees exact status counters.
        self.flush_event_counters(metrics);
        self.refresh_gauges();
        metrics.ingest_hist.observe(micros_since(t0));
        self.check_warn_margin(metrics);
        if !self.poisoned {
            self.flush_ack(metrics);
            metrics.ack_hist.observe(micros_since(t0));
        }
    }

    /// One decoded binary record — the v2 analogue of `process_line`, fed
    /// through the same shared validation core ([`TraceLineParser`]).
    fn handle_record(&mut self, rec: WireRecord, metrics: &Metrics) {
        self.lines_in += 1;
        if self.forensics.is_some() {
            // Binary event records carry their seq implicitly; the parser
            // will assign `events_seen()` to this one, so render with it.
            let implicit_seq = match &self.doc {
                DocState::Running(doc) => doc.parser.events_seen(),
                DocState::Idle => 0,
            };
            let line = wire_record_line(&rec, implicit_seq);
            if let Some(fx) = self.forensics.as_mut() {
                fx.record_wire(&line);
            }
        }
        if matches!(rec, WireRecord::Margin) {
            // Session-level record, accepted mid-document and between
            // documents; the reply precedes the frame's coalesced ack.
            self.margin_request(metrics);
            return;
        }
        if matches!(self.doc, DocState::Idle) {
            if let WireRecord::Xi(spec) = &rec {
                match spec.trim().parse::<Xi>() {
                    Ok(xi) => self.xi = xi,
                    Err(e) => self.protocol_error(&format!("xi: {e}"), metrics),
                }
                return;
            }
            // Any other record starts a fresh document. Binary documents
            // carry no `abc-trace` header line — the frame tag already
            // names the format — so the parser starts past it.
            self.begin_document();
            self.doc = DocState::Running(Box::new(RunningDoc {
                parser: TraceLineParser::new_streaming()
                    .without_header()
                    .with_max_processes(self.max_processes),
                checker: None,
                latched: None,
                margin_frozen: None,
            }));
        } else if matches!(rec, WireRecord::Xi(_)) {
            self.protocol_error("xi record inside a trace document", metrics);
            return;
        }
        self.drive_document(metrics, |parser| match rec.to_trace_record() {
            Some(trec) => parser.feed_record(trec),
            // Defensive: xi records were dispatched above; a stray one is
            // a session error, not a server panic.
            None => Err(TraceTextError {
                line: 0,
                message: "internal: xi record escaped idle-state dispatch".to_string(),
            }),
        });
    }

    fn process_line(&mut self, line: &str, metrics: &Metrics) {
        OBS_RECORDS.add(1);
        if let Some(fx) = self.forensics.as_mut() {
            fx.record_wire(line);
        }
        if line.trim() == crate::proto::MARGIN_REQUEST {
            // On-demand margin sample, accepted mid-document and between
            // documents (`margin` is not a trace-grammar line, so the
            // interception shadows nothing).
            self.margin_request(metrics);
            return;
        }
        if matches!(self.doc, DocState::Idle) {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return;
            }
            if let Some(rest) = trimmed.strip_prefix("xi ") {
                match rest.trim().parse::<Xi>() {
                    Ok(xi) => self.xi = xi,
                    Err(e) => self.protocol_error(&format!("xi: {e}"), metrics),
                }
                return;
            }
            if trimmed == crate::proto::PROTO_V2_REQUEST {
                self.negotiate_v2(metrics);
                return;
            }
            if trimmed == crate::proto::PROTO_V1_REQUEST {
                self.reply_fmt(format_args!("{}\n", crate::proto::PROTO_V1_OK));
                return;
            }
            if let Some(rest) = trimmed.strip_prefix("proto ") {
                self.protocol_error(&format!("unsupported protocol {rest:?}"), metrics);
                return;
            }
            // Anything else starts a fresh document (the parser will
            // reject non-header lines with a precise message).
            self.begin_document();
            self.doc = DocState::Running(Box::new(RunningDoc {
                parser: TraceLineParser::new_streaming().with_max_processes(self.max_processes),
                checker: None,
                latched: None,
                margin_frozen: None,
            }));
        }
        self.drive_document(metrics, |parser| parser.feed_line(line));
    }

    /// Switches the request framing to v2 binary frames. The handshake is
    /// strict: the client must wait for the `proto v2 ok` reply, so any
    /// bytes already pipelined behind the request are a protocol error
    /// (they would otherwise be misread as text).
    fn negotiate_v2(&mut self, metrics: &Metrics) {
        let pipelined = match &self.rx {
            RxMode::Text(assembler) => assembler.has_buffered(),
            // Defensive: negotiation arrives on a text line, so a binary
            // session can never reach here; ignore rather than abort.
            RxMode::Binary(_) => return,
        };
        if pipelined {
            self.protocol_error(
                "data pipelined behind `proto v2` (wait for `proto v2 ok`)",
                metrics,
            );
            return;
        }
        self.reply_fmt(format_args!("{}\n", crate::proto::PROTO_V2_OK));
        self.rx = RxMode::Binary(FrameAssembler::new(self.max_frame_len));
        self.decoder = RecordDecoder::new();
        // Error replies now cite record numbers, counted from the switch.
        self.lines_in = 0;
    }

    /// The shared document state machine: both framings feed the same
    /// [`TraceLineParser`] validation core, so text and binary accept
    /// exactly the same documents and produce byte-identical verdicts.
    fn drive_document<F>(&mut self, metrics: &Metrics, feed: F)
    where
        F: FnOnce(&mut TraceLineParser) -> Result<ParsedLine, TraceTextError>,
    {
        // Take the document state out of `self` so replies can be queued
        // while holding it (a failed/finished document simply stays out).
        // The box makes this per-record round trip a pointer move.
        let DocState::Running(mut doc) = std::mem::replace(&mut self.doc, DocState::Idle) else {
            return; // defensive: both callers just initialized the state
        };
        let RunningDoc {
            parser,
            checker,
            latched,
            margin_frozen,
        } = &mut *doc;
        let parsed = match feed(parser) {
            Ok(p) => p,
            Err(e) => {
                self.protocol_error(&e.message, metrics);
                return;
            }
        };
        let binary = self.binary();
        let mut done = false;
        let mut latched_now = false;
        match parsed {
            ParsedLine::Meta | ParsedLine::Message { .. } => {}
            ParsedLine::Topology => {
                let Some((n, faulty)) = parser.topology() else {
                    // Defensive: Topology is only signalled once the
                    // faulty line has been accepted.
                    self.protocol_error("internal: topology unavailable", metrics);
                    return;
                };
                match IncrementalChecker::new(n, &self.xi) {
                    Ok(mut mon) => {
                        if self.prune_horizon.is_some() {
                            mon.enable_pruning();
                            if self.margin_tracking {
                                // Must precede the first prune: boundary
                                // shortcut arcs need their margin
                                // signatures from the start.
                                mon.enable_margin_tracking();
                            }
                        }
                        for (p, f) in faulty.iter().enumerate() {
                            if *f {
                                mon.mark_faulty(ProcessId(p));
                            }
                        }
                        *checker = Some(mon);
                        let at = self.lines_in;
                        if let Some(fx) = self.forensics.as_mut() {
                            let k = faulty.iter().filter(|f| **f).count();
                            fx.note(at, format!("topology processes={n} faulty={k}"));
                        }
                    }
                    Err(e) => {
                        let msg = format!("xi {} not monitorable: {e}", self.xi);
                        self.protocol_error(&msg, metrics);
                        return;
                    }
                }
            }
            ParsedLine::Event(feed) => {
                self.doc_events_pending += 1;
                let seq = match feed {
                    EventFeed::Init { seq, .. } | EventFeed::Receive { seq, .. } => seq,
                };
                if let Some((latch_seq, wire)) = &*latched {
                    // v1 echoes the latched violation per event; v2 keeps
                    // acking silently (the violation already went out).
                    if binary {
                        self.unacked = Some(seq);
                    } else {
                        let line = format!("violation {latch_seq} {wire}\n");
                        self.reply(&line);
                    }
                } else {
                    let Some(mon) = checker.as_mut() else {
                        // Defensive: the parser admits events only after
                        // the faulty line created the checker.
                        self.protocol_error("internal: event before topology", metrics);
                        return;
                    };
                    match feed {
                        EventFeed::Init { process, .. } => {
                            mon.append_init(process);
                        }
                        EventFeed::Receive {
                            process,
                            send_event,
                            ..
                        } => {
                            let Some(send) = send_event else {
                                // Defensive: streaming mode resolves every
                                // send event before yielding the receive.
                                self.protocol_error(
                                    "internal: unresolved send event in streaming mode",
                                    metrics,
                                );
                                return;
                            };
                            mon.append_send(EventId(send), process);
                        }
                    }
                    if mon.violation().is_some() {
                        // `violation_summary` is latched alongside the
                        // cycle and byte-identical to summarizing against
                        // the graph — and it works in pruned mode, where
                        // there is no graph mirror to summarize against.
                        let Some(summary) = mon.violation_summary() else {
                            // Defensive: a latched monitor carries its
                            // summary by construction.
                            self.protocol_error(
                                "internal: latched monitor lost its witness",
                                metrics,
                            );
                            return;
                        };
                        let wire = summary.wire().to_string();
                        // The margin freezes at the latched witness's
                        // ratio (a latched witness is a relevant cycle,
                        // so its ratio always exists).
                        *margin_frozen = summary.classification.ratio();
                        self.flush_event_counters(metrics);
                        metrics.violations.fetch_add(1, Ordering::Relaxed);
                        self.counters.violations.fetch_add(1, Ordering::Relaxed);
                        // Violation replies are immediate in both framings
                        // and precede the ack that covers `seq`.
                        self.reply_fmt(format_args!("violation {seq} {wire}\n"));
                        if binary {
                            self.unacked = Some(seq);
                        }
                        // Forensics freezes its view *before* the checker
                        // drops: the latch, the counters at latch time,
                        // and a timeline entry. The bundle itself is
                        // written after the document state is restored.
                        let at = self.lines_in;
                        if let Some(fx) = self.forensics.as_mut() {
                            fx.latch = Some((seq as u64, wire.clone()));
                            fx.stats = mon.stats();
                            fx.note(at, format!("latch seq={seq}"));
                            latched_now = true;
                        }
                        *latched = Some((seq, wire));
                        self.note_pruned(mon.stats().pruned_events);
                        // The verdict is latched; stop feeding the checker
                        // so a violating firehose doesn't keep growing its
                        // graph.
                        *checker = None;
                        self.counters.live_events.store(0, Ordering::Relaxed);
                        self.counters.live_arcs.store(0, Ordering::Relaxed);
                        if let Some(r) = margin_frozen.clone() {
                            self.publish_margin(&r, metrics);
                            let at = self.lines_in;
                            if let Some(fx) = self.forensics.as_mut() {
                                fx.record_margin(at, r.to_string());
                            }
                        }
                    } else {
                        if binary {
                            self.unacked = Some(seq);
                        } else {
                            self.reply_fmt(format_args!("ok {seq}\n"));
                        }
                        if let Some(h) = self.prune_horizon {
                            if mon.live_events() > 2 * h.max(1) {
                                // Honest watermark: `horizon` behind the
                                // frontier, capped by the oldest declared
                                // but undelivered message (whose receive
                                // will still name its send event).
                                let mut watermark = parser.events_seen().saturating_sub(h);
                                if let Some(oldest) = parser.oldest_pending_send() {
                                    watermark = watermark.min(oldest);
                                }
                                mon.prune_settled(Some(EventId(watermark)));
                                let at = self.lines_in;
                                if let Some(fx) = self.forensics.as_mut() {
                                    fx.note(at, format!("prune watermark={watermark}"));
                                }
                            }
                        }
                        // Memory gauges refresh per ingested frame / drained
                        // read (`refresh_gauges`), not per event.
                    }
                }
                if let Some(h) = self.prune_horizon {
                    // Window the parser's per-event sidecar on every event —
                    // including after a latch, when the checker is dropped
                    // but events keep arriving: without this, a violating
                    // firehose would grow `event_meta` per post-latch event,
                    // breaking the advertised memory bound.
                    let mut watermark = parser.events_seen().saturating_sub(h);
                    if let Some(oldest) = parser.oldest_pending_send() {
                        watermark = watermark.min(oldest);
                    }
                    parser.forget_events_below(watermark);
                }
            }
            ParsedLine::End => {
                // Acknowledge everything ingested before the verdict goes
                // out, so `ack` never trails its document's `end`.
                self.flush_event_counters(metrics);
                self.flush_ack(metrics);
                // Must render exactly like [`Verdict`]'s `Display`, which
                // the offline monitor and `abc feed` also use — that is
                // the byte-identical-verdicts contract.
                match &*latched {
                    Some((latch_seq, wire)) => {
                        self.reply_fmt(format_args!("end violation at_event={latch_seq} {wire}\n"));
                    }
                    None => {
                        self.reply_fmt(format_args!(
                            "end admissible events={}\n",
                            parser.events_seen()
                        ));
                    }
                }
                metrics.documents.fetch_add(1, Ordering::Relaxed);
                let at = self.lines_in;
                let events_seen = parser.events_seen();
                let verdict = if latched.is_some() {
                    "violation"
                } else {
                    "admissible"
                };
                if let Some(fx) = self.forensics.as_mut() {
                    fx.note(
                        at,
                        format!("document end ({verdict}, events={events_seen})"),
                    );
                }
                // Drop the whole per-document state, margin gauges
                // included.
                self.counters.live_events.store(0, Ordering::Relaxed);
                self.counters.live_arcs.store(0, Ordering::Relaxed);
                self.counters
                    .margin_bp
                    .store(MARGIN_NONE, Ordering::Relaxed);
                self.counters.warning.store(0, Ordering::Relaxed);
                self.warned = false;
                done = true;
            }
        }
        if !done {
            self.doc = DocState::Running(doc);
        }
        if latched_now {
            // Automatic violation forensics: one bundle per latch, written
            // the moment the verdict is known (rare path — file I/O here
            // never rides an admissible stream).
            self.dump_forensics("latch", metrics);
        }
    }

    /// Writes a forensics bundle (and, when the flight recorder is
    /// enabled, a timed span-trace sidecar) to the configured directory.
    /// No-op unless the server was started with a forensics dir. Returns
    /// whether a bundle was written.
    pub(crate) fn dump_forensics(&mut self, reason: &str, metrics: &Metrics) -> bool {
        // A live checker refreshes the frozen counters; the latch path
        // already froze them right before dropping its checker.
        let live_stats = match &self.doc {
            DocState::Running(doc) => doc.checker.as_ref().map(|mon| mon.stats()),
            DocState::Idle => None,
        };
        let Some(fx) = self.forensics.as_mut() else {
            return false;
        };
        if let Some(stats) = live_stats {
            fx.stats = stats;
        }
        let bundle = ForensicsBundle {
            session: self.id,
            reason: reason.to_string(),
            xi: self.xi.to_string(),
            latch: fx.latch.clone(),
            monitor: monitor_counter_pairs(&fx.stats),
            margins: fx.margins.iter().cloned().collect(),
            margins_total: fx.margins_total,
            timeline: fx.timeline.iter().cloned().collect(),
            timeline_total: fx.timeline_total,
            tail: fx.tail.iter().cloned().collect(),
            tail_total: fx.tail_total,
        };
        let path = fx
            .dir
            .join(format!("session-{}-{}.forensics", self.id, fx.dumps));
        if std::fs::create_dir_all(&fx.dir).is_err()
            || std::fs::write(&path, bundle.render()).is_err()
        {
            // Unwritable dir: forensics degrades to a no-op rather than
            // poisoning the session.
            return false;
        }
        fx.dumps += 1;
        metrics.forensics_dumps.fetch_add(1, Ordering::Relaxed);
        if abc_obs::is_enabled() {
            // Timed span data goes to a sidecar, deliberately outside the
            // bundle's byte-reproducibility contract.
            let trace = abc_obs::snapshot().chrome_trace_json();
            let _ = std::fs::write(path.with_extension("forensics.trace.json"), trace);
        }
        true
    }

    fn try_flush(&mut self, metrics: &Metrics) -> bool {
        // Span only when there is something to drain, so idle ticks don't
        // flood the recorder ring.
        let _span = if self.out.pending() > 0 {
            Some(abc_obs::span("service.ack_drain"))
        } else {
            None
        };
        let mut work = false;
        while self.out.pending() > 0 {
            let mut slices = [IoSlice::new(&[]); OUT_MAX_IOV];
            let k = self.out.ioslices(&mut slices);
            match (&self.stream).write_vectored(slices.get(..k).unwrap_or(&[])) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    work = true;
                    metrics.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    self.out.consume(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        work
    }
}
