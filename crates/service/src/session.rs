//! One client connection: non-blocking line assembly, streaming trace
//! parsing, an incremental ABC checker per document, and reply buffering.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use abc_core::monitor::IncrementalChecker;
use abc_core::{EventId, ProcessId, Xi};
use abc_sim::textio::{EventFeed, LineAssembler, ParsedLine, TraceLineParser};

use crate::metrics::Metrics;
use crate::server::ServerConfig;

/// Soft cap on buffered reply bytes: when a client stops draining replies,
/// the session stops reading new requests until the buffer shrinks — the
/// slow client throttles itself, not the server.
const OUT_SOFT_CAP: usize = 1 << 20;

/// Reads per tick per session, so one firehose client cannot starve its
/// shard siblings within a single scheduling round.
const MAX_READS_PER_TICK: usize = 16;

/// The per-document ingestion state.
enum DocState {
    /// Between documents: accepting `xi …` lines or a trace header.
    Idle,
    /// Mid-document.
    Running {
        parser: TraceLineParser,
        /// Created at the `faulty` line; dropped at `end` (memory is per
        /// in-flight document, not per connection lifetime).
        checker: Option<IncrementalChecker>,
        /// `(latch_seq, wire_witness)` once the monitor latched. After the
        /// latch the checker is no longer fed — the verdict can never
        /// change, so remaining events only count and echo.
        latched: Option<(usize, String)>,
    },
}

/// Live counters shared with the server's session table (status page).
#[derive(Clone, Debug)]
pub(crate) struct SessionCounters {
    pub events: Arc<AtomicU64>,
    pub violations: Arc<AtomicU64>,
    /// Monitor-memory gauges: events/arcs currently live in the open
    /// document's checker, and events compacted away so far (across the
    /// connection's documents).
    pub live_events: Arc<AtomicU64>,
    pub live_arcs: Arc<AtomicU64>,
    pub pruned_events: Arc<AtomicU64>,
}

impl SessionCounters {
    pub(crate) fn new() -> SessionCounters {
        SessionCounters {
            events: Arc::new(AtomicU64::new(0)),
            violations: Arc::new(AtomicU64::new(0)),
            live_events: Arc::new(AtomicU64::new(0)),
            live_arcs: Arc::new(AtomicU64::new(0)),
            pruned_events: Arc::new(AtomicU64::new(0)),
        }
    }
}

pub(crate) struct Session {
    pub(crate) id: u64,
    stream: TcpStream,
    assembler: LineAssembler,
    doc: DocState,
    xi: Xi,
    max_processes: usize,
    /// Bounded-memory monitoring: prune each document's checker so at most
    /// ~`2·horizon` events stay live (`None` = exact unbounded mode).
    prune_horizon: Option<usize>,
    /// Pruned-event count already folded into the session counter for the
    /// open document (the monitor reports a per-document running total).
    doc_pruned_reported: usize,
    /// 1-based count of lines received on this connection (error replies
    /// cite it, spanning xi lines and multiple documents).
    lines_in: usize,
    out: Vec<u8>,
    out_pos: usize,
    /// Half-closed: no more requests will arrive; die once `out` drains.
    eof: bool,
    /// Fatal protocol error queued; die once `out` drains.
    poisoned: bool,
    pub(crate) dead: bool,
    pub(crate) counters: SessionCounters,
}

impl Session {
    pub(crate) fn new(
        id: u64,
        stream: TcpStream,
        config: &ServerConfig,
        counters: SessionCounters,
    ) -> Session {
        let mut s = Session {
            id,
            stream,
            assembler: LineAssembler::new(config.max_line_len),
            doc: DocState::Idle,
            xi: config.xi.clone(),
            max_processes: config.max_processes,
            prune_horizon: config.prune_horizon,
            doc_pruned_reported: 0,
            lines_in: 0,
            out: Vec::new(),
            out_pos: 0,
            eof: false,
            poisoned: false,
            dead: false,
            counters,
        };
        s.reply(&format!("{}\n", crate::proto::GREETING));
        s
    }

    fn reply(&mut self, line: &str) {
        self.out.extend_from_slice(line.as_bytes());
    }

    /// Folds the open document's monitor `pruned_events` running total into
    /// the session-lifetime counter (exactly once per pruned event).
    fn note_pruned(&mut self, doc_total: usize) {
        let delta = doc_total.saturating_sub(self.doc_pruned_reported);
        if delta > 0 {
            self.counters
                .pruned_events
                .fetch_add(delta as u64, Ordering::Relaxed);
            self.doc_pruned_reported = doc_total;
        }
    }

    fn protocol_error(&mut self, message: &str, metrics: &Metrics) {
        self.reply(&format!("error line {}: {message}\n", self.lines_in));
        metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
        self.poisoned = true;
    }

    /// Drives the session once: flush pending replies, read whatever
    /// arrived, process complete lines, flush again. Returns whether any
    /// byte moved (the shard loop sleeps only when nothing did).
    pub(crate) fn tick(&mut self, metrics: &Metrics) -> bool {
        let mut work = self.try_flush(metrics);
        if !self.dead && !self.poisoned && !self.eof && self.pending_out() < OUT_SOFT_CAP {
            work |= self.try_read(metrics);
            work |= self.try_flush(metrics);
        }
        if (self.eof || self.poisoned) && self.pending_out() == 0 {
            self.dead = true;
        }
        work
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn try_read(&mut self, metrics: &Metrics) -> bool {
        let mut buf = [0u8; 16 * 1024];
        let mut work = false;
        for _ in 0..MAX_READS_PER_TICK {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // End of requests: a final line without a trailing
                    // newline is still a line (feed clients may half-close
                    // right after `end`).
                    let finished = self.assembler.finish();
                    self.drain_lines(metrics);
                    if let Err(e) = finished {
                        if !self.poisoned {
                            self.lines_in += 1;
                            self.protocol_error(&e.message, metrics);
                        }
                    }
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    work = true;
                    metrics.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    let pushed = self.assembler.push(&buf[..n]);
                    // Lines completed before the failure point still
                    // process (and number) normally; only then is the
                    // offending oversized/invalid line itself counted.
                    self.drain_lines(metrics);
                    if let Err(e) = pushed {
                        if !self.poisoned {
                            self.lines_in += 1;
                            self.protocol_error(&e.message, metrics);
                        }
                        break;
                    }
                    if self.poisoned || self.pending_out() >= OUT_SOFT_CAP {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        work
    }

    fn drain_lines(&mut self, metrics: &Metrics) {
        while let Some(line) = self.assembler.next_line() {
            if self.poisoned {
                break;
            }
            self.lines_in += 1;
            self.process_line(&line, metrics);
        }
    }

    fn process_line(&mut self, line: &str, metrics: &Metrics) {
        if matches!(self.doc, DocState::Idle) {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return;
            }
            if let Some(rest) = trimmed.strip_prefix("xi ") {
                match rest.trim().parse::<Xi>() {
                    Ok(xi) => self.xi = xi,
                    Err(e) => self.protocol_error(&format!("xi: {e}"), metrics),
                }
                return;
            }
            // Anything else starts a fresh document (the parser will
            // reject non-header lines with a precise message).
            self.doc_pruned_reported = 0;
            self.doc = DocState::Running {
                parser: TraceLineParser::new_streaming().with_max_processes(self.max_processes),
                checker: None,
                latched: None,
            };
        }
        // Take the document state out of `self` so replies can be queued
        // while holding it (a failed/finished document simply stays out).
        let DocState::Running {
            mut parser,
            mut checker,
            mut latched,
        } = std::mem::replace(&mut self.doc, DocState::Idle)
        else {
            unreachable!("document state was just initialized");
        };
        let parsed = match parser.feed_line(line) {
            Ok(p) => p,
            Err(e) => {
                self.protocol_error(&e.message, metrics);
                return;
            }
        };
        let mut done = false;
        match parsed {
            ParsedLine::Meta | ParsedLine::Message { .. } => {}
            ParsedLine::Topology => {
                let (n, faulty) = parser.topology().expect("topology follows the faulty line");
                match IncrementalChecker::new(n, &self.xi) {
                    Ok(mut mon) => {
                        if self.prune_horizon.is_some() {
                            mon.enable_pruning();
                        }
                        for (p, f) in faulty.iter().enumerate() {
                            if *f {
                                mon.mark_faulty(ProcessId(p));
                            }
                        }
                        checker = Some(mon);
                    }
                    Err(e) => {
                        let msg = format!("xi {} not monitorable: {e}", self.xi);
                        self.protocol_error(&msg, metrics);
                        return;
                    }
                }
            }
            ParsedLine::Event(feed) => {
                metrics.events.fetch_add(1, Ordering::Relaxed);
                self.counters.events.fetch_add(1, Ordering::Relaxed);
                let seq = match feed {
                    EventFeed::Init { seq, .. } | EventFeed::Receive { seq, .. } => seq,
                };
                if let Some((latch_seq, wire)) = &latched {
                    let line = format!("violation {latch_seq} {wire}\n");
                    self.reply(&line);
                } else {
                    let mon = checker.as_mut().expect("checker exists past Topology");
                    match feed {
                        EventFeed::Init { process, .. } => {
                            mon.append_init(process);
                        }
                        EventFeed::Receive {
                            process,
                            send_event,
                            ..
                        } => {
                            let send =
                                send_event.expect("streaming mode always resolves the send event");
                            mon.append_send(EventId(send), process);
                        }
                    }
                    if mon.violation().is_some() {
                        // `violation_summary` is latched alongside the
                        // cycle and byte-identical to summarizing against
                        // the graph — and it works in pruned mode, where
                        // there is no graph mirror to summarize against.
                        let wire = mon
                            .violation_summary()
                            .expect("latched monitors carry their summary")
                            .wire()
                            .to_string();
                        metrics.violations.fetch_add(1, Ordering::Relaxed);
                        self.counters.violations.fetch_add(1, Ordering::Relaxed);
                        let line = format!("violation {seq} {wire}\n");
                        self.reply(&line);
                        latched = Some((seq, wire));
                        self.note_pruned(mon.stats().pruned_events);
                        // The verdict is latched; stop feeding the checker
                        // so a violating firehose doesn't keep growing its
                        // graph.
                        checker = None;
                        self.counters.live_events.store(0, Ordering::Relaxed);
                        self.counters.live_arcs.store(0, Ordering::Relaxed);
                    } else {
                        self.reply(&format!("ok {seq}\n"));
                        if let Some(h) = self.prune_horizon {
                            if mon.live_events() > 2 * h.max(1) {
                                // Honest watermark: `horizon` behind the
                                // frontier, capped by the oldest declared
                                // but undelivered message (whose receive
                                // will still name its send event).
                                let mut watermark = parser.events_seen().saturating_sub(h);
                                if let Some(oldest) = parser.oldest_pending_send() {
                                    watermark = watermark.min(oldest);
                                }
                                mon.prune_settled(Some(EventId(watermark)));
                            }
                        }
                        self.note_pruned(mon.stats().pruned_events);
                        self.counters
                            .live_events
                            .store(mon.live_events() as u64, Ordering::Relaxed);
                        self.counters
                            .live_arcs
                            .store(mon.live_arcs() as u64, Ordering::Relaxed);
                    }
                }
                if let Some(h) = self.prune_horizon {
                    // Window the parser's per-event sidecar on every event —
                    // including after a latch, when the checker is dropped
                    // but lines keep arriving: without this, a violating
                    // firehose would grow `event_meta` per post-latch line,
                    // breaking the advertised memory bound.
                    let mut watermark = parser.events_seen().saturating_sub(h);
                    if let Some(oldest) = parser.oldest_pending_send() {
                        watermark = watermark.min(oldest);
                    }
                    parser.forget_events_below(watermark);
                }
            }
            ParsedLine::End => {
                // Must render exactly like [`Verdict`]'s `Display`, which
                // the offline monitor and `abc feed` also use — that is
                // the byte-identical-verdicts contract.
                let verdict = match &latched {
                    Some((latch_seq, wire)) => {
                        format!("end violation at_event={latch_seq} {wire}\n")
                    }
                    None => format!("end admissible events={}\n", parser.events_seen()),
                };
                self.reply(&verdict);
                metrics.documents.fetch_add(1, Ordering::Relaxed);
                // Drop the whole per-document state.
                self.counters.live_events.store(0, Ordering::Relaxed);
                self.counters.live_arcs.store(0, Ordering::Relaxed);
                done = true;
            }
        }
        if !done {
            self.doc = DocState::Running {
                parser,
                checker,
                latched,
            };
        }
    }

    fn try_flush(&mut self, metrics: &Metrics) -> bool {
        let mut work = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    work = true;
                    self.out_pos += n;
                    metrics.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.out.len() && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
        work
    }
}
