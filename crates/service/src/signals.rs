//! Minimal SIGINT hook — no `libc` crate in the offline build, so the C
//! `signal(2)` entry point is declared directly (the only unsafe code in
//! the workspace, confined to this module).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT arrived since [`install_sigint_handler`].
#[must_use]
pub fn sigint_seen() -> bool {
    SIGINT_SEEN.load(Ordering::Relaxed)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{AtomicBool, Ordering, SIGINT_SEEN};

    const SIGINT: i32 = 2;
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work: flip the flag.
        SIGINT_SEEN.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        static INSTALLED: AtomicBool = AtomicBool::new(false);
        if INSTALLED.swap(true, Ordering::Relaxed) {
            return true;
        }
        let handler: extern "C" fn(i32) = on_sigint;
        // SAFETY: `signal` is the C standard library entry point; the
        // handler only touches an atomic flag.
        let prev = unsafe { signal(SIGINT, handler as usize) };
        prev != SIG_ERR
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Installs a SIGINT handler that sets the [`sigint_seen`] flag (a server
/// driver polls it next to the stop flag for graceful shutdown). Returns
/// whether installation succeeded; on non-Unix targets this is a no-op
/// returning `false`. Idempotent.
pub fn install_sigint_handler() -> bool {
    imp::install()
}
