//! The sharded TCP server: one accept thread, a fixed pool of shard
//! workers, and a plaintext status/control port.
//!
//! Connections are assigned round-robin by connection id (`id % shards`)
//! and handed to their shard over a `std::sync::mpsc` channel; each shard
//! worker owns its sessions outright and drives them with non-blocking
//! reads/writes, so no locks sit on the ingestion hot path. The shared
//! session table (`Arc<Mutex<…>>`) holds only status-page metadata, with
//! per-session counters as atomics.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use abc_core::Xi;
use abc_rational::Ratio;

use crate::metrics::{self, Metrics, MARGIN_NONE};
use crate::session::{Session, SessionCounters};

/// How long idle loops sleep between polls. Accept latency and shutdown
/// latency are bounded by this; busy loops never sleep.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Data-port bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Status/control-port bind address.
    pub status_addr: String,
    /// Number of shard worker threads.
    pub shards: usize,
    /// Default `Ξ` monitored for sessions that send no `xi` line.
    pub xi: Xi,
    /// Per-line byte cap (see [`abc_sim::textio::LineAssembler`]).
    pub max_line_len: usize,
    /// Per-frame byte cap for the v2 binary framing (see
    /// [`abc_sim::binio::FrameAssembler`]). Enforced from the length
    /// prefix alone, before any payload buffers.
    pub max_frame_len: usize,
    /// Cap on the `processes` count a client may declare. Keep it
    /// consistent with `max_line_len`: a legal `faulty` line grows ~8
    /// bytes per faulty index, so the default 10 000 processes fits the
    /// default 64 KiB line cap even with every process faulty.
    pub max_processes: usize,
    /// `Some(h)` with `h ≥ 1`: per-document monitors run in bounded-memory
    /// mode, pruning their settled prefix so at most ~`2·h` events stay
    /// live. Clients must not name send events older than `h` behind the
    /// frontier (the pruning contract — violations get a parse error, not
    /// a dropped server). `None` (the default) keeps the exact unbounded
    /// behavior; `Some(0)` is rejected by [`start`].
    pub prune_horizon: Option<usize>,
    /// Early-warning threshold (`abc serve --warn-margin P/Q`): when a
    /// session's exact synchrony margin reaches this ratio, its
    /// `warning` state flips (once per document, before any latch) and
    /// `abc_service_margin_warnings_total` increments. Sessions gate the
    /// exact probe behind the cheap
    /// [`abc_core::monitor::IncrementalChecker::margin_upper_bound`]
    /// scan, so an untroubled stream never pays for an exact probe.
    /// `None` (the default) disables warning checks.
    pub warn_margin: Option<Ratio>,
    /// Whether per-document monitors keep margin signatures across
    /// pruning ([`abc_core::monitor::IncrementalChecker::enable_margin_tracking`]).
    /// Only consulted when [`ServerConfig::prune_horizon`] is set —
    /// unpruned monitors answer margin probes exactly without it. With
    /// pruning on and tracking off, `margin` requests and
    /// `--warn-margin` are unavailable (requests get a protocol error).
    /// Defaults to `true`.
    pub margin_tracking: bool,
    /// Violation-forensics directory (`abc serve --forensics-dir DIR`):
    /// when set, every session records its recent wire records, margin
    /// history, and decision timeline, and writes a byte-reproducible
    /// bundle ([`crate::forensics`]) the moment a violation latches — or
    /// on the status port's `dump` command. `None` (the default) disables
    /// capture entirely (zero ingest-path cost).
    pub forensics_dir: Option<std::path::PathBuf>,
    /// How many recent wire records each session's forensics tail keeps
    /// (`abc serve --forensics-tail N`). Only consulted when
    /// [`ServerConfig::forensics_dir`] is set.
    pub forensics_tail: usize,
}

/// Default [`ServerConfig::forensics_tail`]: enough wire context to replay
/// the closing window of a violating cycle without letting a firehose
/// session hold megabytes of line copies.
pub const DEFAULT_FORENSICS_TAIL: usize = 256;

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            status_addr: "127.0.0.1:0".into(),
            shards: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            xi: Xi::from_integer(2),
            max_line_len: abc_sim::textio::DEFAULT_MAX_LINE_LEN,
            max_frame_len: abc_sim::binio::DEFAULT_MAX_FRAME_LEN,
            max_processes: 10_000,
            prune_horizon: None,
            warn_margin: None,
            margin_tracking: true,
            forensics_dir: None,
            forensics_tail: DEFAULT_FORENSICS_TAIL,
        }
    }
}

/// Status-page metadata for one live session.
#[derive(Clone, Debug)]
pub struct SessionMeta {
    /// Peer address.
    pub peer: String,
    /// Owning shard.
    pub shard: usize,
    counters: SessionCounters,
}

impl SessionMeta {
    /// Events ingested by this session so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.counters.events.load(Ordering::Relaxed)
    }

    /// Violations latched by this session so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.counters.violations.load(Ordering::Relaxed)
    }

    /// Events currently held live by this session's monitor (equals the
    /// events ingested into the open document when pruning is off).
    #[must_use]
    pub fn live_events(&self) -> u64 {
        self.counters.live_events.load(Ordering::Relaxed)
    }

    /// Traversal-graph arcs currently held live by this session's monitor.
    #[must_use]
    pub fn live_arcs(&self) -> u64 {
        self.counters.live_arcs.load(Ordering::Relaxed)
    }

    /// Events this session's monitors have compacted away so far.
    #[must_use]
    pub fn pruned_events(&self) -> u64 {
        self.counters.pruned_events.load(Ordering::Relaxed)
    }

    /// The open document's last exactly computed margin, in basis points
    /// (`ratio × 10⁴`, floored — see
    /// [`crate::metrics::ratio_to_basis_points`]); `None` while no exact
    /// probe has run or no relevant cycle exists.
    #[must_use]
    pub fn margin_basis_points(&self) -> Option<u64> {
        let bp = self.counters.margin_bp.load(Ordering::Relaxed);
        (bp != MARGIN_NONE).then_some(bp)
    }

    /// Whether the open document's margin has crossed the
    /// [`ServerConfig::warn_margin`] threshold.
    #[must_use]
    pub fn warning(&self) -> bool {
        self.counters.warning.load(Ordering::Relaxed) != 0
    }
}

type SessionTable = Arc<Mutex<BTreeMap<u64, SessionMeta>>>;

/// Locks the session table, recovering from poisoning.
///
/// The table holds only status-page metadata — no admissibility state —
/// so a panic inside another thread's critical section leaves at worst a
/// stale or missing metadata row. Recovering the guard with
/// [`PoisonError::into_inner`] keeps the accept path, the shard sweeps,
/// and the status page alive, which is strictly better than cascading
/// the panic into every server thread. The `poisoned_lock` integration
/// test deliberately poisons this mutex and asserts the server keeps
/// serving; this helper is the *only* way server code takes the table
/// lock (registered as `lock-fn 1 lock_table` in `lint.conf`).
fn lock_table(
    table: &Mutex<BTreeMap<u64, SessionMeta>>,
) -> MutexGuard<'_, BTreeMap<u64, SessionMeta>> {
    table.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running server: bound addresses, shared metrics, and the join/stop
/// handle. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::join`] (or [`ServerHandle::request_stop`] from another
/// owner of the stop flag).
pub struct ServerHandle {
    addr: SocketAddr,
    status_addr: SocketAddr,
    metrics: Arc<Metrics>,
    table: SessionTable,
    stop: Arc<AtomicBool>,
    /// Bumped once per forensics-dump request; each shard tracks the last
    /// epoch it acted on and dumps all its sessions when it changes.
    dump_epoch: Arc<AtomicU64>,
    /// Shards that have fully exited (final counters flushed); the status
    /// port's `shutdown` reply waits on this before rendering its final
    /// snapshot.
    shards_done: Arc<AtomicUsize>,
    shards: usize,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound data-port address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound status/control-port address.
    #[must_use]
    pub fn status_addr(&self) -> SocketAddr {
        self.status_addr
    }

    /// Shared counters.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// A clone of the stop flag (setting it initiates graceful shutdown;
    /// the status port's `shutdown` command sets the same flag).
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Whether shutdown has been initiated.
    #[must_use]
    pub fn is_stopping(&self) -> bool {
        // ordering: Acquire pairs with the Release store in request_stop /
        // the status port's `shutdown`, making everything the stopper did
        // first visible here. The flag is cold, so strength costs nothing.
        self.stop.load(Ordering::Acquire)
    }

    /// Requests graceful shutdown (idempotent): stop accepting, flush
    /// pending replies, close sessions, exit all threads.
    pub fn request_stop(&self) {
        // ordering: Release publishes the shutdown decision — any thread
        // whose Acquire load sees `true` also sees writes made before the
        // request. One cold store; documents the teardown happens-before.
        self.stop.store(true, Ordering::Release);
    }

    /// Requests shutdown and joins every server thread.
    pub fn join(mut self) {
        self.request_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Whether every shard worker has exited and flushed its final
    /// counters (only ever true once shutdown was requested).
    #[must_use]
    pub fn shards_drained(&self) -> bool {
        // ordering: Acquire pairs with each shard's Release increment
        // after its final counter flush — `true` here means those final
        // writes are visible to the caller.
        self.shards_done.load(Ordering::Acquire) >= self.shards
    }

    /// Asks every shard to write a forensics bundle for each of its live
    /// sessions (the programmatic twin of the status port's `dump`
    /// command). No-op unless the server was configured with
    /// [`ServerConfig::forensics_dir`]. Dumps happen asynchronously on
    /// the shard threads, within one scheduling round.
    pub fn request_forensics_dump(&self) {
        // Relaxed: the epoch is a pure signal — each shard dumps from its
        // own thread-local session state, so no cross-thread data rides
        // on this store.
        self.dump_epoch.fetch_add(1, Ordering::Relaxed);
    }
}

/// Binds both ports and spawns the accept, shard, and status threads.
///
/// # Errors
///
/// Any bind/configuration I/O error.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    if config.prune_horizon == Some(0) {
        // A zero horizon would compact the frontier itself, making every
        // later `m` line a stale reference — no client could comply.
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "prune_horizon must be at least 1",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let status_listener = TcpListener::bind(&config.status_addr)?;
    status_listener.set_nonblocking(true)?;
    let status_addr = status_listener.local_addr()?;

    let metrics = Arc::new(Metrics::new());
    let table: SessionTable = Arc::new(Mutex::new(BTreeMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let dump_epoch = Arc::new(AtomicU64::new(0));
    let shards_done = Arc::new(AtomicUsize::new(0));
    let shards = config.shards.max(1);

    let mut threads = Vec::new();
    let mut senders: Vec<Sender<NewConn>> = Vec::new();
    for shard in 0..shards {
        let (tx, rx) = channel();
        senders.push(tx);
        let config = config.clone();
        let metrics = Arc::clone(&metrics);
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        let dump_epoch = Arc::clone(&dump_epoch);
        let shards_done = Arc::clone(&shards_done);
        threads.push(
            std::thread::Builder::new()
                .name(format!("abc-shard-{shard}"))
                .spawn(move || {
                    shard_loop(
                        shard,
                        &rx,
                        &config,
                        &metrics,
                        &table,
                        &stop,
                        &dump_epoch,
                        &shards_done,
                    );
                })?,
        );
    }

    {
        let metrics = Arc::clone(&metrics);
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("abc-accept".into())
                .spawn(move || accept_loop(&listener, &senders, &metrics, &table, &stop))?,
        );
    }

    {
        let metrics = Arc::clone(&metrics);
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        let dump_epoch = Arc::clone(&dump_epoch);
        let shards_done = Arc::clone(&shards_done);
        threads.push(
            std::thread::Builder::new()
                .name("abc-status".into())
                .spawn(move || {
                    status_loop(
                        &status_listener,
                        &metrics,
                        &table,
                        &stop,
                        &dump_epoch,
                        &shards_done,
                        shards,
                    );
                })?,
        );
    }

    Ok(ServerHandle {
        addr,
        status_addr,
        metrics,
        table,
        stop,
        dump_epoch,
        shards_done,
        shards,
        threads,
    })
}

impl ServerHandle {
    /// Snapshot of the live session table (id → metadata).
    #[must_use]
    pub fn sessions(&self) -> BTreeMap<u64, SessionMeta> {
        lock_table(&self.table).clone()
    }

    /// Test-only hook: panics while holding the session-table lock on a
    /// scratch thread, leaving the mutex poisoned. Exists so the
    /// poisoned-lock recovery contract of [`lock_table`] can be asserted
    /// end to end from an integration test; never call it in production
    /// code.
    #[doc(hidden)]
    pub fn poison_session_table_for_test(&self) {
        let table = Arc::clone(&self.table);
        let _ = std::thread::spawn(move || {
            let _guard = lock_table(&table);
            panic!("deliberate poison (test hook)");
        })
        .join();
    }
}

/// A freshly accepted connection on its way to a shard.
struct NewConn {
    id: u64,
    stream: TcpStream,
    counters: SessionCounters,
}

fn accept_loop(
    listener: &TcpListener,
    senders: &[Sender<NewConn>],
    metrics: &Arc<Metrics>,
    table: &SessionTable,
    stop: &AtomicBool,
) {
    let mut next_id = 0u64;
    // ordering: Acquire pairs with the Release store of the stop flag so
    // shutdown-time writes are visible once the loop observes `true`.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let id = next_id;
                next_id += 1;
                let shard_count = senders.len().max(1) as u64;
                let Ok(shard) = usize::try_from(id % shard_count) else {
                    continue; // unreachable: the remainder fits a usize
                };
                let Some(sender) = senders.get(shard) else {
                    continue; // unreachable: shard < senders.len()
                };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                let counters = SessionCounters::new();
                lock_table(table).insert(
                    id,
                    SessionMeta {
                        peer: peer.to_string(),
                        shard,
                        counters: counters.clone(),
                    },
                );
                // A send can only fail if the shard already exited, which
                // only happens during shutdown — drop the connection then.
                if sender
                    .send(NewConn {
                        id,
                        stream,
                        counters,
                    })
                    .is_err()
                {
                    lock_table(table).remove(&id);
                    metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard: usize,
    rx: &Receiver<NewConn>,
    config: &ServerConfig,
    metrics: &Arc<Metrics>,
    table: &SessionTable,
    stop: &AtomicBool,
    dump_epoch: &AtomicU64,
    shards_done: &AtomicUsize,
) {
    let _ = shard;
    let mut sessions: Vec<Session> = Vec::new();
    let mut seen_epoch = dump_epoch.load(Ordering::Relaxed);
    // Idle backoff: yield to the scheduler for a bounded number of rounds
    // before sleeping `IDLE_POLL`. On loaded single-core hosts this keeps a
    // just-fed session's wake-up latency at scheduler granularity instead
    // of paying the full poll interval at every document start.
    const YIELD_ROUNDS: u32 = 64;
    let mut idle_rounds: u32 = 0;
    loop {
        // ordering: Acquire pairs with the Release store of the stop flag
        // (see request_stop) — teardown writes are visible once seen.
        let stopping = stop.load(Ordering::Acquire);
        let mut work = false;
        while let Ok(conn) = rx.try_recv() {
            if stopping {
                // Refuse late arrivals during shutdown.
                lock_table(table).remove(&conn.id);
                metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            sessions.push(Session::new(conn.id, conn.stream, config, conn.counters));
            work = true;
        }
        // Relaxed: the epoch is a pure signal (see request_forensics_dump);
        // all dumped state is owned by this thread.
        let epoch = dump_epoch.load(Ordering::Relaxed);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            for s in &mut sessions {
                s.dump_forensics("request", metrics);
            }
            work = true;
        }
        for s in &mut sessions {
            work |= s.tick(metrics);
        }
        if work && !sessions.is_empty() {
            // One shard-queue-depth sample per round that did work — the
            // loadgen/forensics view of how loaded this shard is.
            abc_obs::sample("service.shard_sessions", sessions.len() as u64);
        }
        sessions.retain(|s| {
            if s.dead {
                lock_table(table).remove(&s.id);
                metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                work = true;
                false
            } else {
                true
            }
        });
        if stopping {
            // Graceful: one more flush round already happened via tick();
            // drop whatever remains.
            for s in sessions.drain(..) {
                lock_table(table).remove(&s.id);
                metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
            }
            // ordering: Release pairs with the Acquire loads in
            // shards_drained / the status port's shutdown wait — whoever
            // sees this shard counted also sees its final counter flushes
            // and table removals above.
            shards_done.fetch_add(1, Ordering::Release);
            break;
        }
        if work {
            idle_rounds = 0;
        } else {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds <= YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
}

fn status_loop(
    listener: &TcpListener,
    metrics: &Arc<Metrics>,
    table: &SessionTable,
    stop: &AtomicBool,
    dump_epoch: &AtomicU64,
    shards_done: &AtomicUsize,
    shards: usize,
) {
    // ordering: Acquire pairs with the Release store of the stop flag.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                handle_status_conn(
                    stream,
                    metrics,
                    table,
                    stop,
                    dump_epoch,
                    shards_done,
                    shards,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

/// Snapshot of the session table taken under [`lock_table`] and rendered
/// *after* the lock is dropped: formatting grows `String`s and loads a
/// dozen atomics per row, none of which needs the table — only the
/// id→meta association does. ([`SessionMeta`] is a handful of `Arc`
/// clones, so the critical section is a shallow copy.) Keeping the
/// lock's critical sections O(rows) and allocation-light also keeps the
/// R3 lock-order story trivial: no other lock, I/O, or formatting ever
/// runs under the level-1 table lock.
fn snapshot_sessions(table: &SessionTable) -> Vec<(u64, SessionMeta)> {
    let table = lock_table(table);
    table.iter().map(|(id, meta)| (*id, meta.clone())).collect()
}

/// Renders the human status page: the metrics registry, aggregate
/// monitor-memory gauges, and one row per live session.
fn render_human_status(metrics: &Metrics, rows: &[(u64, SessionMeta)]) -> String {
    use std::fmt::Write;
    let mut body = metrics.render();
    let (mut live_events, mut live_arcs, mut pruned) = (0u64, 0u64, 0u64);
    for (_, meta) in rows {
        live_events += meta.live_events();
        live_arcs += meta.live_arcs();
        pruned += meta.pruned_events();
    }
    let _ = writeln!(body, "abc_service_monitor_live_events {live_events}");
    let _ = writeln!(body, "abc_service_monitor_live_arcs {live_arcs}");
    let _ = writeln!(body, "abc_service_monitor_pruned_events_total {pruned}");
    for (id, meta) in rows {
        let margin = match meta.margin_basis_points() {
            Some(bp) => metrics::format_scaled(bp, metrics::MARGIN_SCALE_POW10),
            None => "none".to_string(),
        };
        let _ = writeln!(
            body,
            "session {id} peer={} shard={} events={} violations={} live_events={} \
             live_arcs={} pruned_events={} margin={margin} warning={}",
            meta.peer,
            meta.shard,
            meta.events(),
            meta.violations(),
            meta.live_events(),
            meta.live_arcs(),
            meta.pruned_events(),
            u64::from(meta.warning()),
        );
    }
    body
}

/// Renders the Prometheus text-exposition body: the registry's families
/// plus the table-derived gauges (aggregate monitor memory and the
/// per-session labelled margin/warning gauges).
fn render_prometheus_status(metrics: &Metrics, rows: &[(u64, SessionMeta)]) -> String {
    use crate::metrics::{prom_header, Kind};
    use std::fmt::Write;
    let mut body = metrics.render_prometheus();
    let (mut live_events, mut live_arcs, mut pruned) = (0u64, 0u64, 0u64);
    for (_, meta) in rows {
        live_events += meta.live_events();
        live_arcs += meta.live_arcs();
        pruned += meta.pruned_events();
    }
    prom_header(
        &mut body,
        "abc_service_monitor_live_events",
        Kind::Gauge,
        "Events currently live across all session monitors.",
    );
    let _ = writeln!(body, "abc_service_monitor_live_events {live_events}");
    prom_header(
        &mut body,
        "abc_service_monitor_live_arcs",
        Kind::Gauge,
        "Traversal-graph arcs currently live across all session monitors.",
    );
    let _ = writeln!(body, "abc_service_monitor_live_arcs {live_arcs}");
    prom_header(
        &mut body,
        "abc_service_monitor_pruned_events_total",
        Kind::Counter,
        "Events compacted away by bounded-memory pruning.",
    );
    let _ = writeln!(body, "abc_service_monitor_pruned_events_total {pruned}");
    prom_header(
        &mut body,
        "abc_service_session_margin",
        Kind::Gauge,
        "Last exactly computed synchrony margin per session (absent until a probe runs).",
    );
    for (id, meta) in rows {
        if let Some(bp) = meta.margin_basis_points() {
            let m = metrics::format_scaled(bp, metrics::MARGIN_SCALE_POW10);
            let _ = writeln!(body, "abc_service_session_margin{{session=\"{id}\"}} {m}");
        }
    }
    prom_header(
        &mut body,
        "abc_service_session_warning",
        Kind::Gauge,
        "Whether the session's margin has crossed the warn-margin threshold.",
    );
    for (id, meta) in rows {
        let _ = writeln!(
            body,
            "abc_service_session_warning{{session=\"{id}\"}} {}",
            u64::from(meta.warning()),
        );
    }
    body
}

/// Status protocol: the client sends one command line — `metrics` (or an
/// empty line / immediate EOF, both treated as `metrics`) for the human
/// status page, `prom` or an HTTP-ish `GET …` for the Prometheus text
/// exposition (`GET` gets a minimal HTTP response, so
/// `curl http://status-addr/metrics` scrapes directly), `dump` to request
/// a forensics bundle for every live session, or `shutdown` — and
/// receives a plaintext response. `shutdown` waits (bounded) for every
/// shard to exit and then appends a final counter/gauge snapshot to its
/// reply, so the last scrape a client sees reflects all flushed work.
#[allow(clippy::too_many_arguments)]
fn handle_status_conn(
    mut stream: TcpStream,
    metrics: &Arc<Metrics>,
    table: &SessionTable,
    stop: &AtomicBool,
    dump_epoch: &AtomicU64,
    shards_done: &AtomicUsize,
    shards: usize,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    // A non-reading status client must not wedge the (single) status
    // thread — and with it the `shutdown` command and ServerHandle::join.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 512];
    let mut line = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                line.extend_from_slice(buf.get(..n).unwrap_or(&[]));
                if line.contains(&b'\n') || line.len() > 400 {
                    break;
                }
            }
            Err(_) => break, // timeout / reset: treat as `metrics`
        }
    }
    let command = String::from_utf8_lossy(&line);
    let command = command.lines().next().unwrap_or("").trim();
    let response = if command == "shutdown" {
        // ordering: Release — same contract as ServerHandle::request_stop.
        stop.store(true, Ordering::Release);
        // Final-snapshot flush: wait (bounded — a wedged shard must not
        // wedge the reply) for every shard to exit, then append the final
        // counter/gauge state to the acknowledgement.
        let deadline = Instant::now() + Duration::from_secs(2);
        // ordering: Acquire pairs with each shard's Release increment, so
        // the snapshot below sees the shards' final counter flushes.
        while shards_done.load(Ordering::Acquire) < shards && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let rows = snapshot_sessions(table);
        format!("ok shutting down\n{}", render_human_status(metrics, &rows))
    } else if command == "dump" {
        // Relaxed: pure signal (see ServerHandle::request_forensics_dump).
        dump_epoch.fetch_add(1, Ordering::Relaxed);
        "ok forensics dump requested\n".to_string()
    } else if command.is_empty() || command == "metrics" {
        // Formatting happens strictly after the table lock is dropped
        // (see snapshot_sessions) — the critical section is a shallow
        // clone, never a growing String.
        let rows = snapshot_sessions(table);
        render_human_status(metrics, &rows)
    } else if command == "prom" || command.starts_with("GET") {
        let rows = snapshot_sessions(table);
        let body = render_prometheus_status(metrics, &rows);
        if command.starts_with("GET") {
            format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
        } else {
            body
        }
    } else {
        format!("error unknown command {command:?}\n")
    };
    let _ = stream.write_all(response.as_bytes());
}
