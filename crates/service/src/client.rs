//! Client helpers: stream a trace document to a server (`abc feed`) and
//! the multi-connection load generator (`abc loadgen`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use abc_core::Xi;

use crate::proto::{Reply, Verdict, PROTO_V2_OK, PROTO_V2_REQUEST};

/// One on-demand margin sample received while feeding (the reply to an
/// interleaved `margin` request / margin record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MarginSample {
    /// The exact ratio as its `P/Q` wire text; `None` when the server
    /// replied `margin none` (no relevant cycle yet).
    pub ratio: Option<String>,
    /// The wire-form witness of a tightest cycle attaining the ratio,
    /// when the server extracted one.
    pub witness: Option<String>,
}

/// The outcome of feeding one trace document.
#[derive(Clone, Debug)]
pub struct FeedOutcome {
    /// Final verdict (rendered byte-identically to the offline monitor's).
    pub verdict: Verdict,
    /// Margin samples received, in arrival order (empty unless the
    /// document interleaved margin requests — see `abc feed
    /// --margin-every`).
    pub margins: Vec<MarginSample>,
    /// Progress replies received before the verdict: per-event `ok`s over
    /// the v1 text framing, coalesced `ack`s over v2 binary.
    pub oks: usize,
    /// Events positively acknowledged by those replies (equals `oks` in
    /// v1; the highest `ack <through>` + 1 in v2).
    pub acked_events: usize,
    /// Arrival gap before each progress reply — per-event reply RTT in
    /// v1, per-batch ack latency in v2. Verdict and violation replies are
    /// not counted.
    pub ack_latencies: Vec<Duration>,
    /// Time from first byte written to verdict received.
    pub latency: Duration,
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = None;
    let addrs = addr.to_socket_addrs().map_err(|e| format!("{addr}: {e}"))?;
    for a in addrs {
        match TcpStream::connect_timeout(&a, Duration::from_secs(5)) {
            Ok(s) => {
                // Small writes (handshake lines, the `xi` frame — which
                // draws no reply) must not nagle behind a delayed ACK;
                // without this every short document pays a ~40 ms stall.
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => format!("{addr}: {e}"),
        None => format!("{addr}: no addresses resolved"),
    })
}

fn read_greeting(reader: &mut impl BufRead, addr: &str) -> Result<(), String> {
    let mut greeting = String::new();
    reader
        .read_line(&mut greeting)
        .map_err(|e| format!("{addr}: reading greeting: {e}"))?;
    // Prefix match so clients keep working across greeting evolutions
    // (v1 said `abc-service v1`, v2 advertises its framings).
    if !greeting.starts_with("abc-service v") {
        return Err(format!(
            "{addr}: unexpected greeting {:?} (not an abc-service?)",
            greeting.trim_end()
        ));
    }
    Ok(())
}

/// Completes the `proto v2` handshake: requests the binary framing and
/// waits for the server's go-ahead before any frame bytes are written
/// (bytes pipelined behind the request would be misread as text).
fn negotiate_binary(
    stream: &TcpStream,
    reader: &mut impl BufRead,
    addr: &str,
) -> Result<(), String> {
    {
        let mut w = stream;
        w.write_all(format!("{PROTO_V2_REQUEST}\n").as_bytes())
            .map_err(|e| format!("{addr}: requesting proto v2: {e}"))?;
    }
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("{addr}: reading proto v2 reply: {e}"))?;
    if line.trim_end() != PROTO_V2_OK {
        return Err(format!(
            "{addr}: server refused binary framing: {:?}",
            line.trim_end()
        ));
    }
    Ok(())
}

/// Streams one document (already in wire form — stream-ordered text from
/// [`abc_sim::Trace::to_stream_text`] or binary frames from
/// [`abc_sim::Trace::to_stream_binary`]) over an open connection and reads
/// replies until the verdict. The document is written from a companion
/// thread while replies are drained concurrently, so arbitrarily large
/// documents cannot deadlock on filled socket buffers.
fn feed_document(
    stream: &TcpStream,
    reader: &mut impl BufRead,
    doc: &[u8],
) -> Result<FeedOutcome, String> {
    let started = Instant::now();
    type Progress = (Verdict, usize, usize, Vec<Duration>, Vec<MarginSample>);
    let (verdict, oks, acked_events, ack_latencies, margins) =
        std::thread::scope(|scope| -> Result<Progress, String> {
            let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
            let writer_thread = scope.spawn(move || -> Result<(), String> {
                writer
                    .write_all(doc)
                    .map_err(|e| format!("writing document: {e}"))?;
                writer.flush().map_err(|e| format!("flush: {e}"))
            });
            let mut line = String::new();
            let mut oks = 0usize;
            let mut acked = 0usize;
            let mut gaps = Vec::new();
            let mut margins = Vec::new();
            let mut last = started;
            let verdict = loop {
                line.clear();
                let n = reader
                    .read_line(&mut line)
                    .map_err(|e| format!("reading reply: {e}"))?;
                if n == 0 {
                    return Err("server closed the connection before a verdict".into());
                }
                match Reply::parse(&line)? {
                    Reply::Ok { seq } => {
                        oks += 1;
                        acked = acked.max(seq + 1);
                        let now = Instant::now();
                        gaps.push(now - last);
                        last = now;
                    }
                    Reply::Ack { through } => {
                        oks += 1;
                        acked = acked.max(through + 1);
                        let now = Instant::now();
                        gaps.push(now - last);
                        last = now;
                    }
                    Reply::Violation { .. } => {}
                    Reply::Margin { ratio, witness } => {
                        margins.push(MarginSample { ratio, witness });
                    }
                    Reply::End(v) => break v,
                    Reply::Error { message } => return Err(format!("server error: {message}")),
                }
            };
            writer_thread
                .join()
                .map_err(|_| "writer thread panicked".to_string())??;
            Ok((verdict, oks, acked, gaps, margins))
        })?;
    Ok(FeedOutcome {
        verdict,
        margins,
        oks,
        acked_events,
        ack_latencies,
        latency: started.elapsed(),
    })
}

/// Connects to `addr`, selects `xi`, streams one document, and returns
/// the verdict — the library behind `abc feed`.
///
/// # Errors
///
/// Connection, protocol, or server-reported errors as readable text.
pub fn feed_stream_text(addr: &str, xi: &Xi, doc: &str) -> Result<FeedOutcome, String> {
    let stream = connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    read_greeting(&mut reader, addr)?;
    {
        let mut w = &stream;
        w.write_all(format!("xi {xi}\n").as_bytes())
            .map_err(|e| format!("writing xi: {e}"))?;
    }
    feed_document(&stream, &mut reader, doc.as_bytes())
}

/// Connects to `addr`, negotiates the v2 binary framing, selects `xi`
/// (as an in-band `xi` record frame), streams one binary document (from
/// [`abc_sim::Trace::to_stream_binary`]), and returns the verdict — the
/// library behind `abc feed --binary`.
///
/// # Errors
///
/// Connection, negotiation, protocol, or server-reported errors as
/// readable text.
pub fn feed_stream_binary(addr: &str, xi: &Xi, doc: &[u8]) -> Result<FeedOutcome, String> {
    let stream = connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    read_greeting(&mut reader, addr)?;
    negotiate_binary(&stream, &mut reader, addr)?;
    {
        let mut w = &stream;
        w.write_all(&abc_sim::binio::xi_frame(&xi.to_string()))
            .map_err(|e| format!("writing xi: {e}"))?;
    }
    feed_document(&stream, &mut reader, doc)
}

/// One document of a load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenDoc {
    /// Display label (e.g. the generating run index).
    pub label: String,
    /// Stream-ordered document text (the v1 wire form).
    pub text: String,
    /// Binary frames (the v2 wire form, from
    /// [`abc_sim::Trace::to_stream_binary`]); required when the run feeds
    /// the binary framing.
    pub binary: Option<Vec<u8>>,
    /// Events in the document (for throughput accounting).
    pub events: usize,
    /// The expected verdict, if the caller wants byte-verification.
    pub expect: Option<Verdict>,
}

/// Per-document result.
#[derive(Clone, Debug)]
pub struct DocOutcome {
    /// Index into the submitted document list.
    pub doc_index: usize,
    /// Which connection carried it.
    pub connection: usize,
    /// Events ingested.
    pub events: usize,
    /// Progress replies received (`ok`s in v1, coalesced `ack`s in v2).
    pub acks: usize,
    /// The server's verdict.
    pub verdict: Verdict,
    /// Submit-to-verdict latency.
    pub latency: Duration,
}

/// Aggregate load-generation report.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Wire protocol the run fed: `"v1"` (text) or `"v2"` (binary).
    pub protocol: &'static str,
    /// Per-document outcomes, in document order.
    pub outcomes: Vec<DocOutcome>,
    /// Total events ingested.
    pub total_events: usize,
    /// Total progress replies (`ok`/`ack`) across all documents.
    pub acks: usize,
    /// Mean events per progress reply: ~1 in v1, the batching factor in
    /// v2 — the number that makes v1 and v2 latency rows comparable.
    pub events_per_ack: f64,
    /// Documents whose verdict was a violation.
    pub violations: usize,
    /// Documents whose verdict mismatched the expectation (0 unless
    /// expectations were provided).
    pub mismatches: usize,
    /// Wall clock of the whole run.
    pub wall: Duration,
    /// Aggregate throughput in events/second.
    pub events_per_sec: f64,
    /// Latency percentiles over documents: (p50, p90, p99, max).
    pub latency_percentiles: (Duration, Duration, Duration, Duration),
    /// Per-batch ack latency percentiles over all progress replies:
    /// (p50, p90, p99, max). In v1 a "batch" is one event, so this is the
    /// old per-event reply RTT; in v2 it is the per-frame ack gap.
    pub ack_latency_percentiles: (Duration, Duration, Duration, Duration),
    /// Work-queue depth percentiles (p50, p99): documents still waiting
    /// in the shared queue, sampled into the flight recorder
    /// (`loadgen.queue_depth`) each time a worker claims one. `None`
    /// when the recorder was disabled for the run.
    pub queue_depth_percentiles: Option<(u64, u64)>,
}

/// Renders a duration as integer-derived milliseconds (`1.234ms`),
/// through the same fixed-point formatter as margin ratios and the
/// Prometheus histograms ([`crate::metrics::format_scaled`]) — no float
/// enters the committed text, so reports diff cleanly.
#[must_use]
pub fn format_ms(d: Duration) -> String {
    let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
    format!("{}ms", crate::metrics::format_scaled(us, 3))
}

impl LoadgenReport {
    /// `bp` is the percentile in basis points (5000 = p50, 9900 = p99);
    /// integer arithmetic keeps the index math free of float casts.
    fn percentile(sorted: &[Duration], bp: usize) -> Duration {
        let Some(last) = sorted.len().checked_sub(1) else {
            return Duration::ZERO;
        };
        let idx = (last * bp + 5_000) / 10_000;
        sorted.get(idx.min(last)).copied().unwrap_or(Duration::ZERO)
    }

    /// Renders the human-readable report body. Latencies render through
    /// [`format_ms`] (integer basis, fixed precision).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let (p50, p90, p99, max) = self.latency_percentiles;
        let (a50, a90, a99, amax) = self.ack_latency_percentiles;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} documents, {} events over {} (protocol {})",
            self.outcomes.len(),
            self.total_events,
            format_ms(self.wall),
            self.protocol
        );
        let _ = writeln!(out, "throughput: {:.0} events/s", self.events_per_sec);
        let _ = writeln!(
            out,
            "doc latency: p50={} p90={} p99={} max={}",
            format_ms(p50),
            format_ms(p90),
            format_ms(p99),
            format_ms(max)
        );
        let _ = writeln!(
            out,
            "ack latency: p50={} p90={} p99={} max={} \
             ({:.1} events/ack over {} acks)",
            format_ms(a50),
            format_ms(a90),
            format_ms(a99),
            format_ms(amax),
            self.events_per_ack,
            self.acks
        );
        if let Some((q50, q99)) = self.queue_depth_percentiles {
            let _ = writeln!(out, "queue depth: p50={q50} p99={q99} docs waiting");
        }
        let _ = writeln!(
            out,
            "verdicts: {} violation(s), {} mismatch(es)",
            self.violations, self.mismatches
        );
        out
    }
}

/// Replays `docs` over `connections` persistent connections (each worker
/// claims documents from a shared queue and streams them back to back on
/// one connection) and aggregates throughput and latency percentiles.
/// With `binary` set, every connection negotiates the v2 framing and
/// streams each document's pre-encoded frames.
///
/// # Errors
///
/// The first connection/protocol error any worker hits, or a document
/// missing its binary encoding when `binary` is set.
pub fn run_loadgen(
    addr: &str,
    xi: &Xi,
    docs: &[LoadgenDoc],
    connections: usize,
    binary: bool,
) -> Result<LoadgenReport, String> {
    let connections = connections.max(1).min(docs.len().max(1));
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    type WorkerOut = Result<(Vec<DocOutcome>, Vec<Duration>), String>;
    let results: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_idx in 0..connections {
            let next = &next;
            handles.push(scope.spawn(move || -> WorkerOut {
                let stream = connect(addr)?;
                let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                read_greeting(&mut reader, addr)?;
                if binary {
                    negotiate_binary(&stream, &mut reader, addr)?;
                    let mut w = &stream;
                    w.write_all(&abc_sim::binio::xi_frame(&xi.to_string()))
                        .map_err(|e| format!("writing xi: {e}"))?;
                } else {
                    let mut w = &stream;
                    w.write_all(format!("xi {xi}\n").as_bytes())
                        .map_err(|e| format!("writing xi: {e}"))?;
                }
                let mut outcomes = Vec::new();
                let mut gaps = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= docs.len() {
                        break;
                    }
                    // Flight-recorder hook (no-op unless the embedding
                    // process called `abc_obs::enable`): how many
                    // documents are still waiting when this one is
                    // claimed.
                    abc_obs::sample("loadgen.queue_depth", (docs.len() - i - 1) as u64);
                    let Some(doc) = docs.get(i) else { break };
                    let payload: &[u8] = if binary {
                        doc.binary.as_deref().ok_or_else(|| {
                            format!("document {} has no binary encoding", doc.label)
                        })?
                    } else {
                        doc.text.as_bytes()
                    };
                    let fed = feed_document(&stream, &mut reader, payload)
                        .map_err(|e| format!("document {}: {e}", doc.label))?;
                    gaps.extend_from_slice(&fed.ack_latencies);
                    outcomes.push(DocOutcome {
                        doc_index: i,
                        connection: conn_idx,
                        events: doc.events,
                        acks: fed.oks,
                        verdict: fed.verdict,
                        latency: fed.latency,
                    });
                }
                Ok((outcomes, gaps))
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("loadgen worker panicked".to_string()))
            })
            .collect()
    });
    let wall = started.elapsed();

    let mut outcomes = Vec::new();
    let mut ack_gaps: Vec<Duration> = Vec::new();
    for r in results {
        let (o, g) = r?;
        outcomes.extend(o);
        ack_gaps.extend(g);
    }
    outcomes.sort_by_key(|o| o.doc_index);
    let total_events: usize = outcomes.iter().map(|o| o.events).sum();
    let acks: usize = outcomes.iter().map(|o| o.acks).sum();
    let violations = outcomes.iter().filter(|o| o.verdict.is_violation()).count();
    let mismatches = outcomes
        .iter()
        .filter(|o| {
            docs.get(o.doc_index)
                .and_then(|d| d.expect.as_ref())
                .is_some_and(|want| want.to_string() != o.verdict.to_string())
        })
        .count();
    let mut latencies: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    latencies.sort();
    ack_gaps.sort();
    let queue_depth_percentiles = if abc_obs::is_enabled() {
        let mut depths: Vec<u64> = abc_obs::snapshot()
            .threads
            .iter()
            .flat_map(|t| t.entries.iter())
            .filter(|e| e.kind == abc_obs::EntryKind::Sample && e.name == "loadgen.queue_depth")
            .map(|e| e.value)
            .collect();
        depths.sort_unstable();
        let pick = |bp: usize| {
            let last = depths.len().saturating_sub(1);
            let idx = (last * bp + 5_000) / 10_000;
            depths.get(idx.min(last)).copied().unwrap_or(0)
        };
        (!depths.is_empty()).then(|| (pick(5_000), pick(9_900)))
    } else {
        None
    };
    #[allow(clippy::cast_precision_loss)]
    let events_per_sec = total_events as f64 / wall.as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let events_per_ack = total_events as f64 / (acks.max(1)) as f64;
    Ok(LoadgenReport {
        protocol: if binary { "v2" } else { "v1" },
        latency_percentiles: (
            LoadgenReport::percentile(&latencies, 5_000),
            LoadgenReport::percentile(&latencies, 9_000),
            LoadgenReport::percentile(&latencies, 9_900),
            latencies.last().copied().unwrap_or(Duration::ZERO),
        ),
        ack_latency_percentiles: (
            LoadgenReport::percentile(&ack_gaps, 5_000),
            LoadgenReport::percentile(&ack_gaps, 9_000),
            LoadgenReport::percentile(&ack_gaps, 9_900),
            ack_gaps.last().copied().unwrap_or(Duration::ZERO),
        ),
        queue_depth_percentiles,
        outcomes,
        total_events,
        acks,
        events_per_ack,
        violations,
        mismatches,
        wall,
        events_per_sec,
    })
}

/// Sends one command to a status port and returns the response body —
/// `metrics` for the status page, `shutdown` for graceful stop.
///
/// # Errors
///
/// Connection or I/O errors as readable text.
pub fn status_command(status_addr: &str, command: &str) -> Result<String, String> {
    let mut stream = connect(status_addr)?;
    stream
        .write_all(format!("{command}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    // Half-close so the server sees EOF even if it reads past the line.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut body = String::new();
    stream
        .read_to_string(&mut body)
        .map_err(|e| e.to_string())?;
    Ok(body)
}
