//! Client helpers: stream a trace document to a server (`abc feed`) and
//! the multi-connection load generator (`abc loadgen`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use abc_core::Xi;

use crate::proto::{Reply, Verdict, GREETING};

/// The outcome of feeding one trace document.
#[derive(Clone, Debug)]
pub struct FeedOutcome {
    /// Final verdict (rendered byte-identically to the offline monitor's).
    pub verdict: Verdict,
    /// Per-event `ok` replies received before the verdict (equals the
    /// event count for admissible documents).
    pub oks: usize,
    /// Time from first byte written to verdict received.
    pub latency: Duration,
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = None;
    let addrs = addr.to_socket_addrs().map_err(|e| format!("{addr}: {e}"))?;
    for a in addrs {
        match TcpStream::connect_timeout(&a, Duration::from_secs(5)) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => format!("{addr}: {e}"),
        None => format!("{addr}: no addresses resolved"),
    })
}

fn read_greeting(reader: &mut impl BufRead, addr: &str) -> Result<(), String> {
    let mut greeting = String::new();
    reader
        .read_line(&mut greeting)
        .map_err(|e| format!("{addr}: reading greeting: {e}"))?;
    if greeting.trim_end() != GREETING {
        return Err(format!(
            "{addr}: unexpected greeting {:?} (not an abc-service?)",
            greeting.trim_end()
        ));
    }
    Ok(())
}

/// Streams one document (already in stream order, e.g. from
/// [`abc_sim::Trace::to_stream_text`]) over an open connection and reads
/// replies until the verdict. The document is written from a companion
/// thread while replies are drained concurrently, so arbitrarily large
/// documents cannot deadlock on filled socket buffers.
fn feed_document(
    stream: &TcpStream,
    reader: &mut impl BufRead,
    doc: &str,
) -> Result<FeedOutcome, String> {
    let started = Instant::now();
    let (verdict, oks) = std::thread::scope(|scope| -> Result<(Verdict, usize), String> {
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let writer_thread = scope.spawn(move || -> Result<(), String> {
            writer
                .write_all(doc.as_bytes())
                .map_err(|e| format!("writing document: {e}"))?;
            writer.flush().map_err(|e| format!("flush: {e}"))
        });
        let mut line = String::new();
        let mut oks = 0usize;
        let verdict = loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("reading reply: {e}"))?;
            if n == 0 {
                return Err("server closed the connection before a verdict".into());
            }
            match Reply::parse(&line)? {
                Reply::Ok { .. } => oks += 1,
                Reply::Violation { .. } => {}
                Reply::End(v) => break v,
                Reply::Error { message } => return Err(format!("server error: {message}")),
            }
        };
        writer_thread
            .join()
            .map_err(|_| "writer thread panicked".to_string())??;
        Ok((verdict, oks))
    })?;
    Ok(FeedOutcome {
        verdict,
        oks,
        latency: started.elapsed(),
    })
}

/// Connects to `addr`, selects `xi`, streams one document, and returns
/// the verdict — the library behind `abc feed`.
///
/// # Errors
///
/// Connection, protocol, or server-reported errors as readable text.
pub fn feed_stream_text(addr: &str, xi: &Xi, doc: &str) -> Result<FeedOutcome, String> {
    let stream = connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    read_greeting(&mut reader, addr)?;
    {
        let mut w = &stream;
        w.write_all(format!("xi {xi}\n").as_bytes())
            .map_err(|e| format!("writing xi: {e}"))?;
    }
    feed_document(&stream, &mut reader, doc)
}

/// One document of a load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenDoc {
    /// Display label (e.g. the generating run index).
    pub label: String,
    /// Stream-ordered document text.
    pub text: String,
    /// Events in the document (for throughput accounting).
    pub events: usize,
    /// The expected verdict, if the caller wants byte-verification.
    pub expect: Option<Verdict>,
}

/// Per-document result.
#[derive(Clone, Debug)]
pub struct DocOutcome {
    /// Index into the submitted document list.
    pub doc_index: usize,
    /// Which connection carried it.
    pub connection: usize,
    /// Events ingested.
    pub events: usize,
    /// The server's verdict.
    pub verdict: Verdict,
    /// Submit-to-verdict latency.
    pub latency: Duration,
}

/// Aggregate load-generation report.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Per-document outcomes, in document order.
    pub outcomes: Vec<DocOutcome>,
    /// Total events ingested.
    pub total_events: usize,
    /// Documents whose verdict was a violation.
    pub violations: usize,
    /// Documents whose verdict mismatched the expectation (0 unless
    /// expectations were provided).
    pub mismatches: usize,
    /// Wall clock of the whole run.
    pub wall: Duration,
    /// Aggregate throughput in events/second.
    pub events_per_sec: f64,
    /// Latency percentiles over documents: (p50, p90, p99, max).
    pub latency_percentiles: (Duration, Duration, Duration, Duration),
}

impl LoadgenReport {
    fn percentile(sorted: &[Duration], p: f64) -> Duration {
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Renders the human-readable report body.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let (p50, p90, p99, max) = self.latency_percentiles;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} documents, {} events over {:?}",
            self.outcomes.len(),
            self.total_events,
            self.wall
        );
        let _ = writeln!(out, "throughput: {:.0} events/s", self.events_per_sec);
        let _ = writeln!(
            out,
            "doc latency: p50={p50:?} p90={p90:?} p99={p99:?} max={max:?}"
        );
        let _ = writeln!(
            out,
            "verdicts: {} violation(s), {} mismatch(es)",
            self.violations, self.mismatches
        );
        out
    }
}

/// Replays `docs` over `connections` persistent connections (each worker
/// claims documents from a shared queue and streams them back to back on
/// one connection) and aggregates throughput and latency percentiles.
///
/// # Errors
///
/// The first connection/protocol error any worker hits.
pub fn run_loadgen(
    addr: &str,
    xi: &Xi,
    docs: &[LoadgenDoc],
    connections: usize,
) -> Result<LoadgenReport, String> {
    let connections = connections.max(1).min(docs.len().max(1));
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let results: Vec<Result<Vec<DocOutcome>, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_idx in 0..connections {
            let next = &next;
            handles.push(scope.spawn(move || -> Result<Vec<DocOutcome>, String> {
                let stream = connect(addr)?;
                let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                read_greeting(&mut reader, addr)?;
                {
                    let mut w = &stream;
                    w.write_all(format!("xi {xi}\n").as_bytes())
                        .map_err(|e| format!("writing xi: {e}"))?;
                }
                let mut outcomes = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= docs.len() {
                        break;
                    }
                    let doc = &docs[i];
                    let fed = feed_document(&stream, &mut reader, &doc.text)
                        .map_err(|e| format!("document {}: {e}", doc.label))?;
                    outcomes.push(DocOutcome {
                        doc_index: i,
                        connection: conn_idx,
                        events: doc.events,
                        verdict: fed.verdict,
                        latency: fed.latency,
                    });
                }
                Ok(outcomes)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let wall = started.elapsed();

    let mut outcomes = Vec::new();
    for r in results {
        outcomes.extend(r?);
    }
    outcomes.sort_by_key(|o| o.doc_index);
    let total_events: usize = outcomes.iter().map(|o| o.events).sum();
    let violations = outcomes.iter().filter(|o| o.verdict.is_violation()).count();
    let mismatches = outcomes
        .iter()
        .filter(|o| {
            docs[o.doc_index]
                .expect
                .as_ref()
                .is_some_and(|want| want.to_string() != o.verdict.to_string())
        })
        .count();
    let mut latencies: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    latencies.sort();
    #[allow(clippy::cast_precision_loss)]
    let events_per_sec = total_events as f64 / wall.as_secs_f64().max(1e-9);
    Ok(LoadgenReport {
        latency_percentiles: (
            LoadgenReport::percentile(&latencies, 0.50),
            LoadgenReport::percentile(&latencies, 0.90),
            LoadgenReport::percentile(&latencies, 0.99),
            latencies.last().copied().unwrap_or(Duration::ZERO),
        ),
        outcomes,
        total_events,
        violations,
        mismatches,
        wall,
        events_per_sec,
    })
}

/// Sends one command to a status port and returns the response body —
/// `metrics` for the status page, `shutdown` for graceful stop.
///
/// # Errors
///
/// Connection or I/O errors as readable text.
pub fn status_command(status_addr: &str, command: &str) -> Result<String, String> {
    let mut stream = connect(status_addr)?;
    stream
        .write_all(format!("{command}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    // Half-close so the server sees EOF even if it reads past the line.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut body = String::new();
    stream
        .read_to_string(&mut body)
        .map_err(|e| e.to_string())?;
    Ok(body)
}
