//! Aggregate service counters, exported on the status port as plaintext.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters shared by every thread of the service. All updates
/// are relaxed atomics — the status page is a snapshot, not a transaction.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Connections accepted over the server's lifetime.
    pub sessions_opened: AtomicU64,
    /// Connections fully closed.
    pub sessions_closed: AtomicU64,
    /// Trace documents ingested to their `end` line.
    pub documents: AtomicU64,
    /// Events ingested (across all sessions and documents).
    pub events: AtomicU64,
    /// Documents whose monitor latched a violation.
    pub violations: AtomicU64,
    /// Connections terminated by a protocol/parse error.
    pub parse_errors: AtomicU64,
    /// Raw bytes read from data sockets.
    pub bytes_in: AtomicU64,
    /// Raw reply bytes written to data sockets.
    pub bytes_out: AtomicU64,
    /// Binary (v2) frames ingested.
    pub frames: AtomicU64,
    /// Coalesced `ack` replies sent (v2 sessions).
    pub acks: AtomicU64,
}

impl Metrics {
    /// Fresh counters; `started` is now.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            documents: AtomicU64::new(0),
            events: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            acks: AtomicU64::new(0),
        }
    }

    /// Currently open sessions.
    #[must_use]
    pub fn sessions_active(&self) -> u64 {
        self.sessions_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.sessions_closed.load(Ordering::Relaxed))
    }

    /// Renders the plaintext status-page body: one `key value` pair per
    /// line, Prometheus-style names.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let uptime = self.started.elapsed();
        let events = self.events.load(Ordering::Relaxed);
        let secs = uptime.as_secs_f64().max(1e-9);
        let mut out = String::new();
        let mut kv = |k: &str, v: u64| {
            let _ = writeln!(out, "abc_service_{k} {v}");
        };
        kv("uptime_seconds", uptime.as_secs());
        kv("sessions_active", self.sessions_active());
        kv(
            "sessions_total",
            self.sessions_opened.load(Ordering::Relaxed),
        );
        kv("documents_total", self.documents.load(Ordering::Relaxed));
        kv("events_total", events);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        kv("events_per_second_avg", (events as f64 / secs) as u64);
        kv("violations_total", self.violations.load(Ordering::Relaxed));
        kv(
            "parse_errors_total",
            self.parse_errors.load(Ordering::Relaxed),
        );
        kv("bytes_in_total", self.bytes_in.load(Ordering::Relaxed));
        kv("bytes_out_total", self.bytes_out.load(Ordering::Relaxed));
        kv("frames_total", self.frames.load(Ordering::Relaxed));
        kv("acks_total", self.acks.load(Ordering::Relaxed));
        out
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_all_counters() {
        let m = Metrics::new();
        m.sessions_opened.store(3, Ordering::Relaxed);
        m.sessions_closed.store(1, Ordering::Relaxed);
        m.events.store(42, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("abc_service_sessions_active 2"), "{text}");
        assert!(text.contains("abc_service_events_total 42"), "{text}");
        assert!(text.contains("abc_service_parse_errors_total 0"), "{text}");
    }
}
