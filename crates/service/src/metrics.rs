//! The service metrics registry: named counters, gauges, and histograms
//! with stable `abc_service_*` identifiers, exported on the status port
//! both in the original human `key value` format ([`Metrics::render`])
//! and in the Prometheus text exposition format
//! ([`Metrics::render_prometheus`], served for `GET /metrics`).
//!
//! All hot-path updates are relaxed atomics — the status page is a
//! snapshot, not a transaction. Exact margin values travel through the
//! wire protocol as `P/Q` rationals; the gauges and the workspace margin
//! histogram carry fixed-point approximations in **basis points**
//! (`ratio × 10⁴`, see [`ratio_to_basis_points`]) so no float ever
//! enters a committed number — [`format_scaled`] renders the same
//! fixed-point integers everywhere a decimal is shown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use abc_rational::Ratio;

/// Sentinel gauge value meaning "no sample yet / no relevant cycle".
pub const MARGIN_NONE: u64 = u64::MAX;

/// Fixed-point scale of margin gauges: 1.0 of ratio = 10⁴ basis points.
pub const MARGIN_SCALE_POW10: u32 = 4;

/// Margin histogram bucket upper bounds, in basis points (ratio × 10⁴):
/// 1, 1.1, 1.25, 1.5, 2, 3, 5 (+Inf is implicit).
const MARGIN_BUCKETS_BP: &[u64] = &[10_000, 11_000, 12_500, 15_000, 20_000, 30_000, 50_000];

/// Latency histogram bucket upper bounds, in microseconds:
/// 100µs … 2.5s (+Inf is implicit).
const LATENCY_BUCKETS_US: &[u64] = &[100, 500, 1_000, 5_000, 25_000, 100_000, 500_000, 2_500_000];

/// Renders a fixed-point integer (`value / 10^pow10`) as a plain decimal
/// with trailing zeros trimmed — the one formatter shared by margin
/// ratios (basis points), latencies (µs → ms or s), and histogram
/// bounds, so committed bench JSON and scraped metrics never go through
/// a float.
///
/// ```
/// use abc_service::metrics::format_scaled;
/// assert_eq!(format_scaled(12_500, 4), "1.25"); // 12500 bp = ratio 1.25
/// assert_eq!(format_scaled(2_500_000, 6), "2.5"); // 2.5e6 µs = 2.5 s
/// assert_eq!(format_scaled(30_000, 4), "3");
/// assert_eq!(format_scaled(7, 3), "0.007");
/// ```
#[must_use]
pub fn format_scaled(value: u64, pow10: u32) -> String {
    let scale = 10u64.saturating_pow(pow10);
    let whole = value / scale;
    let frac = value % scale;
    if frac == 0 {
        return whole.to_string();
    }
    let digits = usize::try_from(pow10).unwrap_or(0);
    let mut s = format!("{whole}.{frac:0>digits$}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// The fixed-point gauge form of an exact margin ratio: `⌊ratio × 10⁴⌋`
/// basis points, clamped to `u64` (the sentinel [`MARGIN_NONE`] is
/// reserved for "no sample").
#[must_use]
pub fn ratio_to_basis_points(r: &Ratio) -> u64 {
    let scaled = r * &Ratio::from_integer(10_000);
    let bp = scaled.floor().to_i128().unwrap_or(i128::MAX);
    u64::try_from(bp.max(0))
        .unwrap_or(MARGIN_NONE - 1)
        .min(MARGIN_NONE - 1)
}

/// What a metric family is, for the `# TYPE` exposition line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Writes the `# HELP` / `# TYPE` header of one exposition family.
/// Public so the status port can emit per-session families (labelled
/// gauges live in the session table, not in this registry).
pub fn prom_header(out: &mut String, name: &str, kind: Kind, help: &str) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
}

/// A fixed-bucket histogram of relaxed atomics. Bounds are integers in a
/// fixed-point unit (`10^-scale_pow10` of the exposition unit) so
/// observation and rendering stay float-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    scale_pow10: u32,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64], scale_pow10: u32) -> Histogram {
        Histogram {
            bounds,
            scale_pow10,
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation (in the histogram's fixed-point unit).
    pub fn observe(&self, value: u64) {
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            if value <= *bound {
                bucket.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exposition body: cumulative `_bucket{le=…}` lines (buckets store
    /// cumulative counts directly), `_sum`, `_count`.
    fn render_prometheus(&self, out: &mut String, name: &str) {
        use std::fmt::Write;
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            let le = format_scaled(*bound, self.scale_pow10);
            let v = bucket.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {v}");
        }
        let n = self.count();
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {n}");
        let sum = format_scaled(self.sum.load(Ordering::Relaxed), self.scale_pow10);
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {n}");
    }
}

/// Monotonic counters, gauges, and histograms shared by every thread of
/// the service.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Connections accepted over the server's lifetime.
    pub sessions_opened: AtomicU64,
    /// Connections fully closed.
    pub sessions_closed: AtomicU64,
    /// Trace documents ingested to their `end` line.
    pub documents: AtomicU64,
    /// Events ingested (across all sessions and documents).
    pub events: AtomicU64,
    /// Documents whose monitor latched a violation.
    pub violations: AtomicU64,
    /// Connections terminated by a protocol/parse error.
    pub parse_errors: AtomicU64,
    /// Raw bytes read from data sockets.
    pub bytes_in: AtomicU64,
    /// Raw reply bytes written to data sockets.
    pub bytes_out: AtomicU64,
    /// Binary (v2) frames ingested.
    pub frames: AtomicU64,
    /// Coalesced `ack` replies sent (v2 sessions).
    pub acks: AtomicU64,
    /// Sessions whose exact margin crossed the `--warn-margin` threshold
    /// (flipped at most once per document, before any latch).
    pub margin_warnings: AtomicU64,
    /// Forensics bundles written (latch-triggered or `dump`-requested).
    pub forensics_dumps: AtomicU64,
    /// Workspace-wide distribution of exactly computed margins, in basis
    /// points (ratio × 10⁴).
    pub margin_hist: Histogram,
    /// Time spent parsing + checking one ingested batch (a v2 frame or
    /// one drained v1 read), in microseconds.
    pub ingest_hist: Histogram,
    /// Time from a v2 frame's arrival to its coalesced ack being queued,
    /// in microseconds.
    pub ack_hist: Histogram,
}

impl Metrics {
    /// Fresh registry; `started` is now.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            documents: AtomicU64::new(0),
            events: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            acks: AtomicU64::new(0),
            margin_warnings: AtomicU64::new(0),
            forensics_dumps: AtomicU64::new(0),
            margin_hist: Histogram::new(MARGIN_BUCKETS_BP, MARGIN_SCALE_POW10),
            ingest_hist: Histogram::new(LATENCY_BUCKETS_US, 6),
            ack_hist: Histogram::new(LATENCY_BUCKETS_US, 6),
        }
    }

    /// Currently open sessions.
    #[must_use]
    pub fn sessions_active(&self) -> u64 {
        self.sessions_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.sessions_closed.load(Ordering::Relaxed))
    }

    /// The registry's counter families, in rendering order: stable
    /// exposition name (without the `abc_service_` prefix), help text,
    /// current value.
    fn counters(&self) -> [(&'static str, &'static str, u64); 11] {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        [
            (
                "sessions_total",
                "Connections accepted over the server's lifetime.",
                c(&self.sessions_opened),
            ),
            (
                "documents_total",
                "Trace documents ingested to their end record.",
                c(&self.documents),
            ),
            ("events_total", "Events ingested.", c(&self.events)),
            (
                "violations_total",
                "Documents whose monitor latched a violation.",
                c(&self.violations),
            ),
            (
                "parse_errors_total",
                "Connections terminated by a protocol or parse error.",
                c(&self.parse_errors),
            ),
            (
                "bytes_in_total",
                "Raw bytes read from data sockets.",
                c(&self.bytes_in),
            ),
            (
                "bytes_out_total",
                "Raw reply bytes written to data sockets.",
                c(&self.bytes_out),
            ),
            (
                "frames_total",
                "Binary (v2) frames ingested.",
                c(&self.frames),
            ),
            (
                "acks_total",
                "Coalesced ack replies sent (v2 sessions).",
                c(&self.acks),
            ),
            (
                "margin_warnings_total",
                "Sessions whose exact margin crossed the warn-margin threshold.",
                c(&self.margin_warnings),
            ),
            (
                "forensics_dumps_total",
                "Forensics bundles written (latch-triggered or dump-requested).",
                c(&self.forensics_dumps),
            ),
        ]
    }

    /// Renders the plaintext status-page body: one `key value` pair per
    /// line, Prometheus-style names (the original human format).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let uptime = self.started.elapsed();
        let events = self.events.load(Ordering::Relaxed);
        let secs = uptime.as_secs_f64().max(1e-9);
        let mut out = String::new();
        let mut kv = |k: &str, v: u64| {
            let _ = writeln!(out, "abc_service_{k} {v}");
        };
        kv("uptime_seconds", uptime.as_secs());
        kv("sessions_active", self.sessions_active());
        kv(
            "sessions_total",
            self.sessions_opened.load(Ordering::Relaxed),
        );
        kv("documents_total", self.documents.load(Ordering::Relaxed));
        kv("events_total", events);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        kv("events_per_second_avg", (events as f64 / secs) as u64);
        kv("violations_total", self.violations.load(Ordering::Relaxed));
        kv(
            "parse_errors_total",
            self.parse_errors.load(Ordering::Relaxed),
        );
        kv("bytes_in_total", self.bytes_in.load(Ordering::Relaxed));
        kv("bytes_out_total", self.bytes_out.load(Ordering::Relaxed));
        kv("frames_total", self.frames.load(Ordering::Relaxed));
        kv("acks_total", self.acks.load(Ordering::Relaxed));
        kv(
            "margin_warnings_total",
            self.margin_warnings.load(Ordering::Relaxed),
        );
        kv(
            "forensics_dumps_total",
            self.forensics_dumps.load(Ordering::Relaxed),
        );
        kv("margin_samples_total", self.margin_hist.count());
        out
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// every family gets `# HELP` / `# TYPE` headers, counters keep
    /// their `_total` suffix, histograms expose cumulative
    /// `_bucket{le=…}` / `_sum` / `_count` series. Per-session families
    /// (labelled margin/warning gauges, monitor-memory aggregates) are
    /// appended by the status port from the session table.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        prom_header(
            &mut out,
            "abc_service_uptime_seconds",
            Kind::Gauge,
            "Seconds since the server started.",
        );
        let _ = writeln!(
            out,
            "abc_service_uptime_seconds {}",
            self.started.elapsed().as_secs()
        );
        prom_header(
            &mut out,
            "abc_service_sessions_active",
            Kind::Gauge,
            "Currently open sessions.",
        );
        let _ = writeln!(
            out,
            "abc_service_sessions_active {}",
            self.sessions_active()
        );
        for (name, help, value) in self.counters() {
            let full = format!("abc_service_{name}");
            prom_header(&mut out, &full, Kind::Counter, help);
            let _ = writeln!(out, "{full} {value}");
        }
        prom_header(
            &mut out,
            "abc_service_margin",
            Kind::Histogram,
            "Exactly computed synchrony margins (max relevant-cycle ratio).",
        );
        self.margin_hist
            .render_prometheus(&mut out, "abc_service_margin");
        prom_header(
            &mut out,
            "abc_service_ingest_seconds",
            Kind::Histogram,
            "Time parsing and checking one ingested batch.",
        );
        self.ingest_hist
            .render_prometheus(&mut out, "abc_service_ingest_seconds");
        prom_header(
            &mut out,
            "abc_service_ack_seconds",
            Kind::Histogram,
            "Time from a v2 frame's arrival to its ack being queued.",
        );
        self.ack_hist
            .render_prometheus(&mut out, "abc_service_ack_seconds");
        out
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_all_counters() {
        let m = Metrics::new();
        m.sessions_opened.store(3, Ordering::Relaxed);
        m.sessions_closed.store(1, Ordering::Relaxed);
        m.events.store(42, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("abc_service_sessions_active 2"), "{text}");
        assert!(text.contains("abc_service_events_total 42"), "{text}");
        assert!(text.contains("abc_service_parse_errors_total 0"), "{text}");
        assert!(
            text.contains("abc_service_margin_warnings_total 0"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_exposition_has_headers_and_histograms() {
        let m = Metrics::new();
        m.events.store(7, Ordering::Relaxed);
        m.margin_hist.observe(12_000); // ratio 1.2
        m.margin_hist.observe(25_000); // ratio 2.5
        m.ingest_hist.observe(300); // 300 µs
        let text = m.render_prometheus();
        assert!(
            text.contains("# TYPE abc_service_events_total counter"),
            "{text}"
        );
        assert!(text.contains("# HELP abc_service_margin "), "{text}");
        assert!(
            text.contains("# TYPE abc_service_margin histogram"),
            "{text}"
        );
        assert!(
            text.contains("abc_service_margin_bucket{le=\"1.25\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("abc_service_margin_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("abc_service_margin_sum 3.7"), "{text}");
        assert!(text.contains("abc_service_margin_count 2"), "{text}");
        assert!(
            text.contains("abc_service_ingest_seconds_bucket{le=\"0.0005\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn empty_histograms_render_format_valid_exposition() {
        // A fresh registry (no observations anywhere) must still produce
        // a structurally valid exposition: every histogram family carries
        // its full bucket ladder at zero, `_sum 0`, `_count 0`, and every
        // body line belongs to a `# TYPE`-declared family.
        let m = Metrics::new();
        let text = m.render_prometheus();
        for family in [
            "abc_service_margin",
            "abc_service_ingest_seconds",
            "abc_service_ack_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} histogram")),
                "{family} family missing:\n{text}"
            );
            assert!(
                text.contains(&format!("{family}_bucket{{le=\"+Inf\"}} 0")),
                "{family} +Inf bucket missing:\n{text}"
            );
            assert!(text.contains(&format!("{family}_sum 0\n")), "{text}");
            assert!(text.contains(&format!("{family}_count 0\n")), "{text}");
        }
        // Every non-comment line is `name{labels}? value` with a numeric
        // value — the shape a Prometheus scraper requires.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value pair");
            assert!(!name.is_empty(), "{line:?}");
            assert!(
                value.parse::<f64>().is_ok(),
                "non-numeric sample value in {line:?}"
            );
        }
    }

    #[test]
    fn fixed_point_formatting_has_no_float_drift() {
        assert_eq!(format_scaled(0, 4), "0");
        assert_eq!(format_scaled(10_000, 4), "1");
        assert_eq!(format_scaled(10_001, 4), "1.0001");
        assert_eq!(format_scaled(123, 0), "123");
        assert_eq!(format_scaled(1, 6), "0.000001");
    }

    #[test]
    fn margin_basis_points_floor_exactly() {
        assert_eq!(ratio_to_basis_points(&Ratio::new(3, 2)), 15_000);
        assert_eq!(ratio_to_basis_points(&Ratio::new(1, 3)), 3_333);
        assert_eq!(ratio_to_basis_points(&Ratio::from_integer(1)), 10_000);
    }
}
