//! Violation forensics: a self-contained, byte-reproducible bundle a
//! session writes when its monitor latches a violation (or on an explicit
//! status-port `dump` request), plus the parser/renderer behind
//! `abc inspect`.
//!
//! # Determinism contract
//!
//! A bundle contains **only input-derived data** — the latched witness,
//! monitor counters, margin history keyed by request number, the decision
//! timeline, and the last-N wire records — never timestamps, peer
//! addresses, or anything scheduling-dependent. Feeding the same document
//! bytes with the same server flags therefore produces byte-identical
//! bundles, which is what makes a bundle attachable to a bug report as
//! *the* reproduction. The timed span trace (wall-clock Chrome trace
//! events from [`abc_obs`]) is deliberately written to a sidecar file
//! (`<bundle>.trace.json`) outside this contract.
//!
//! # Bundle grammar (version 1)
//!
//! ```text
//! abc-forensics v1
//! session <id>
//! reason <latch|request>
//! xi <P/Q>
//! latch <seq> <wire-witness>          (or: latch none)
//! [monitor]
//! <key> <u64>                          (one line per counter)
//! [margins] <kept> <total>
//! <request#> <P/Q|none>                (kept lines)
//! [timeline] <kept> <total>
//! <request#> <text…>                   (kept lines)
//! [wire-tail] <kept> <total>
//! <wire line>                          (kept lines, verbatim)
//! end-forensics
//! ```
//!
//! The three logs declare their line counts up front, so the parser never
//! guesses where a section ends — a wire-tail line is free to contain
//! `[monitor]` or anything else the client sent.

use std::fmt::Write as _;

use abc_core::monitor::MonitorStats;
use abc_sim::binio::WireRecord;

/// First line of every bundle; doubles as the sniff `abc inspect` uses to
/// tell bundles from Chrome trace JSON.
pub const BUNDLE_HEADER: &str = "abc-forensics v1";

/// Last line of every bundle (truncation tripwire).
pub const BUNDLE_FOOTER: &str = "end-forensics";

/// A parsed (or about-to-be-rendered) forensics bundle. Field order
/// mirrors the bundle grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForensicsBundle {
    /// Session (connection) id the bundle describes.
    pub session: u64,
    /// Why the bundle was written: `latch` (a violation latched) or
    /// `request` (status-port `dump` command).
    pub reason: String,
    /// The `Ξ` the session monitored, as its `P/Q` wire text.
    pub xi: String,
    /// `(seq, wire_witness)` of the latched violation, if any.
    pub latch: Option<(u64, String)>,
    /// Monitor counters (key, value), in [`MonitorStats`] field order.
    pub monitor: Vec<(String, u64)>,
    /// Margin history: `(request#, ratio-or-none)` per exact sample that
    /// the *client's own requests* (and the latch freeze) produced. Gated
    /// warn probes are excluded: their schedule depends on read chunking,
    /// which would break byte reproducibility.
    pub margins: Vec<(u64, String)>,
    /// Total margin samples observed (≥ `margins.len()`; the log keeps
    /// the most recent entries).
    pub margins_total: u64,
    /// Decision timeline: `(request#, entry)` for document starts,
    /// topology, prunes, the latch, and document ends.
    pub timeline: Vec<(u64, String)>,
    /// Total timeline entries observed.
    pub timeline_total: u64,
    /// The most recent wire records, rendered as v1 text lines (binary
    /// sessions render canonically; text sessions keep lines verbatim).
    pub tail: Vec<String>,
    /// Total wire records observed (≥ `tail.len()`).
    pub tail_total: u64,
}

/// The monitor counters in their canonical bundle order.
#[must_use]
pub fn monitor_counter_pairs(stats: &MonitorStats) -> Vec<(String, u64)> {
    vec![
        ("events".to_string(), stats.events as u64),
        ("messages".to_string(), stats.messages as u64),
        ("arcs".to_string(), stats.arcs as u64),
        ("relaxations".to_string(), stats.relaxations),
        ("full_checks".to_string(), stats.full_checks),
        ("pruned_events".to_string(), stats.pruned_events as u64),
        ("pruned_arcs".to_string(), stats.pruned_arcs as u64),
        (
            "live_events_peak".to_string(),
            stats.live_events_peak as u64,
        ),
        ("live_arcs_peak".to_string(), stats.live_arcs_peak as u64),
    ]
}

/// Renders one wire record as its canonical v1 text line (no trailing
/// newline). `implicit_seq` supplies the event sequence number for binary
/// event records, which carry it implicitly.
#[must_use]
pub fn wire_record_line(rec: &WireRecord, implicit_seq: usize) -> String {
    fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
        match v {
            Some(x) => x.to_string(),
            None => "-".to_string(),
        }
    }
    match rec {
        WireRecord::Processes(n) => format!("processes {n}"),
        WireRecord::Faulty(v) => {
            let mut line = String::from("faulty");
            for p in v {
                let _ = write!(line, " {p}");
            }
            line
        }
        WireRecord::DeclaredEvents(n) => format!("events {n}"),
        WireRecord::DeclaredMessages(n) => format!("messages {n}"),
        WireRecord::Event(e) => format!(
            "e {} {} {} {} {} {} {}",
            e.seq.unwrap_or(implicit_seq),
            e.process,
            e.time,
            opt(e.trigger),
            u8::from(e.received_only),
            opt(e.label),
            u8::from(e.distinguished),
        ),
        WireRecord::Message(m) => format!(
            "m {} {} {} {} {} {}",
            m.from,
            m.to,
            m.send_event,
            opt(m.recv_event),
            m.send_time,
            opt(m.recv_time),
        ),
        WireRecord::End => "end".to_string(),
        WireRecord::Xi(spec) => format!("xi {spec}"),
        WireRecord::Margin => "margin".to_string(),
    }
}

impl ForensicsBundle {
    /// Renders the bundle in its canonical (byte-reproducible) form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{BUNDLE_HEADER}");
        let _ = writeln!(out, "session {}", self.session);
        let _ = writeln!(out, "reason {}", self.reason);
        let _ = writeln!(out, "xi {}", self.xi);
        match &self.latch {
            Some((seq, wire)) => {
                let _ = writeln!(out, "latch {seq} {wire}");
            }
            None => {
                let _ = writeln!(out, "latch none");
            }
        }
        let _ = writeln!(out, "[monitor]");
        for (key, value) in &self.monitor {
            let _ = writeln!(out, "{key} {value}");
        }
        let _ = writeln!(
            out,
            "[margins] {} {}",
            self.margins.len(),
            self.margins_total
        );
        for (at, ratio) in &self.margins {
            let _ = writeln!(out, "{at} {ratio}");
        }
        let _ = writeln!(
            out,
            "[timeline] {} {}",
            self.timeline.len(),
            self.timeline_total
        );
        for (at, entry) in &self.timeline {
            let _ = writeln!(out, "{at} {entry}");
        }
        let _ = writeln!(out, "[wire-tail] {} {}", self.tail.len(), self.tail_total);
        for line in &self.tail {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "{BUNDLE_FOOTER}");
        out
    }

    /// Parses a bundle back from its canonical form. Untrusted input —
    /// every malformed shape is a readable error, never a panic.
    ///
    /// # Errors
    ///
    /// A message naming the first offending line.
    pub fn parse(text: &str) -> Result<ForensicsBundle, String> {
        let mut lines = text.lines();
        let expect = |got: Option<&str>, what: &str| -> Result<String, String> {
            got.map(ToString::to_string)
                .ok_or_else(|| format!("bundle truncated before {what}"))
        };
        let header = expect(lines.next(), "header")?;
        if header != BUNDLE_HEADER {
            return Err(format!("not a forensics bundle (header {header:?})"));
        }
        let session = parse_kv_u64(&expect(lines.next(), "session line")?, "session")?;
        let reason = parse_kv_rest(&expect(lines.next(), "reason line")?, "reason")?;
        let xi = parse_kv_rest(&expect(lines.next(), "xi line")?, "xi")?;
        let latch_line = expect(lines.next(), "latch line")?;
        let latch_rest = latch_line
            .strip_prefix("latch ")
            .ok_or_else(|| format!("expected `latch …`, got {latch_line:?}"))?;
        let latch = if latch_rest == "none" {
            None
        } else {
            let (seq, wire) = latch_rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed latch line {latch_line:?}"))?;
            let seq: u64 = seq.parse().map_err(|e| format!("latch seq {seq:?}: {e}"))?;
            Some((seq, wire.to_string()))
        };
        let monitor_header = expect(lines.next(), "[monitor] section")?;
        if monitor_header != "[monitor]" {
            return Err(format!("expected `[monitor]`, got {monitor_header:?}"));
        }
        // Counters run until the [margins] section header.
        let mut monitor = Vec::new();
        let margins_header = loop {
            let line = expect(lines.next(), "[margins] section")?;
            if line.starts_with("[margins]") {
                break line;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed counter line {line:?}"))?;
            let value: u64 = value.parse().map_err(|e| format!("counter {key}: {e}"))?;
            monitor.push((key.to_string(), value));
        };
        let (margins_kept, margins_total) = parse_section_counts(&margins_header, "[margins]")?;
        let mut margins = Vec::new();
        for _ in 0..margins_kept {
            let line = expect(lines.next(), "margin entry")?;
            let (at, ratio) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed margin entry {line:?}"))?;
            let at: u64 = at.parse().map_err(|e| format!("margin entry: {e}"))?;
            margins.push((at, ratio.to_string()));
        }
        let timeline_header = expect(lines.next(), "[timeline] section")?;
        let (timeline_kept, timeline_total) = parse_section_counts(&timeline_header, "[timeline]")?;
        let mut timeline = Vec::new();
        for _ in 0..timeline_kept {
            let line = expect(lines.next(), "timeline entry")?;
            let (at, entry) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed timeline entry {line:?}"))?;
            let at: u64 = at.parse().map_err(|e| format!("timeline entry: {e}"))?;
            timeline.push((at, entry.to_string()));
        }
        let tail_header = expect(lines.next(), "[wire-tail] section")?;
        let (tail_kept, tail_total) = parse_section_counts(&tail_header, "[wire-tail]")?;
        let mut tail = Vec::new();
        for _ in 0..tail_kept {
            tail.push(expect(lines.next(), "wire-tail line")?);
        }
        let footer = expect(lines.next(), "footer")?;
        if footer != BUNDLE_FOOTER {
            return Err(format!("expected `{BUNDLE_FOOTER}`, got {footer:?}"));
        }
        Ok(ForensicsBundle {
            session,
            reason,
            xi,
            latch,
            monitor,
            margins,
            margins_total,
            timeline,
            timeline_total,
            tail,
            tail_total,
        })
    }

    /// The human rendering `abc inspect` prints.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "forensics bundle: session {} (reason: {})",
            self.session, self.reason
        );
        let _ = writeln!(out, "xi: {}", self.xi);
        match &self.latch {
            Some((seq, wire)) => {
                let _ = writeln!(out, "verdict: violation latched at event {seq}");
                let _ = writeln!(out, "witness: {wire}");
            }
            None => {
                let _ = writeln!(out, "verdict: no violation latched");
            }
        }
        let _ = writeln!(out, "monitor counters:");
        let width = self.monitor.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (key, value) in &self.monitor {
            let _ = writeln!(out, "  {key:<width$} {value}");
        }
        let _ = writeln!(
            out,
            "margin history ({} of {} samples):",
            self.margins.len(),
            self.margins_total
        );
        for (at, ratio) in &self.margins {
            let _ = writeln!(out, "  request {at}: {ratio}");
        }
        let _ = writeln!(
            out,
            "timeline ({} of {} entries):",
            self.timeline.len(),
            self.timeline_total
        );
        for (at, entry) in &self.timeline {
            let _ = writeln!(out, "  request {at}: {entry}");
        }
        let _ = writeln!(
            out,
            "wire tail (last {} of {} records):",
            self.tail.len(),
            self.tail_total
        );
        for line in &self.tail {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}

/// Parses `<key> <u64>` with a fixed expected key.
fn parse_kv_u64(line: &str, key: &str) -> Result<u64, String> {
    let rest = parse_kv_rest(line, key)?;
    rest.parse().map_err(|e| format!("{key} {rest:?}: {e}"))
}

/// Parses `<key> <rest…>` with a fixed expected key.
fn parse_kv_rest(line: &str, key: &str) -> Result<String, String> {
    match line.split_once(' ') {
        Some((k, rest)) if k == key => Ok(rest.to_string()),
        _ => Err(format!("expected `{key} …`, got {line:?}")),
    }
}

/// Parses a `[section] <kept> <total>` header.
fn parse_section_counts(line: &str, section: &str) -> Result<(usize, u64), String> {
    let rest = line
        .strip_prefix(section)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("expected `{section} <kept> <total>`, got {line:?}"))?;
    let (kept, total) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed section header {line:?}"))?;
    let kept: usize = kept
        .parse()
        .map_err(|e| format!("{section} kept count: {e}"))?;
    // Clamp against hostile headers: never pre-trust a count larger than
    // the remaining input could possibly satisfy (the per-line reads fail
    // with `truncated` anyway; this keeps memory bounded first).
    if kept > 1 << 24 {
        return Err(format!("{section} kept count {kept} is implausibly large"));
    }
    let total: u64 = total
        .parse()
        .map_err(|e| format!("{section} total count: {e}"))?;
    Ok((kept, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> ForensicsBundle {
        ForensicsBundle {
            session: 7,
            reason: "latch".to_string(),
            xi: "2".to_string(),
            latch: Some((5, "cycle f=1 b=2 m0+ m1- m2-".to_string())),
            monitor: monitor_counter_pairs(&MonitorStats {
                events: 6,
                messages: 3,
                arcs: 12,
                relaxations: 9,
                full_checks: 1,
                ..MonitorStats::default()
            }),
            margins: vec![(4, "3/2".to_string()), (5, "2".to_string())],
            margins_total: 2,
            timeline: vec![
                (1, "document start (text framing)".to_string()),
                (3, "topology processes=3 faulty=0".to_string()),
                (5, "latch seq=5".to_string()),
            ],
            timeline_total: 3,
            tail: vec![
                "processes 3".to_string(),
                "faulty".to_string(),
                "e 0 0 1 - 0 - 0".to_string(),
                "end".to_string(),
            ],
            tail_total: 9,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let bundle = sample_bundle();
        let text = bundle.render();
        let parsed = ForensicsBundle::parse(&text).expect("canonical render parses");
        assert_eq!(parsed, bundle);
        assert_eq!(parsed.render(), text, "render ∘ parse is the identity");
    }

    #[test]
    fn tail_lines_cannot_break_framing() {
        // A hostile client can put section headers *inside* wire lines;
        // the declared counts keep the parser on track.
        let mut bundle = sample_bundle();
        bundle.tail = vec!["[monitor]".to_string(), "end-forensics".to_string()];
        bundle.tail_total = 2;
        let parsed = ForensicsBundle::parse(&bundle.render()).expect("parses");
        assert_eq!(parsed.tail, bundle.tail);
    }

    #[test]
    fn rejects_malformed() {
        assert!(ForensicsBundle::parse("").is_err());
        assert!(ForensicsBundle::parse("abc-forensics v0\n").is_err());
        let mut truncated = sample_bundle().render();
        truncated.truncate(truncated.len() - BUNDLE_FOOTER.len() - 1);
        assert!(ForensicsBundle::parse(&truncated).is_err());
        let hostile = format!("{BUNDLE_HEADER}\nsession 1\nreason x\nxi 2\nlatch none\n[monitor]\n[margins] 99999999999 0\n");
        assert!(ForensicsBundle::parse(&hostile).is_err());
    }

    #[test]
    fn wire_record_lines_match_v1_grammar() {
        use abc_sim::textio::{EventRecord, MessageRecord};
        assert_eq!(
            wire_record_line(&WireRecord::Processes(3), 0),
            "processes 3"
        );
        assert_eq!(
            wire_record_line(&WireRecord::Faulty(vec![1, 2]), 0),
            "faulty 1 2"
        );
        assert_eq!(
            wire_record_line(
                &WireRecord::Event(EventRecord {
                    seq: None,
                    process: 1,
                    time: 7,
                    trigger: Some(0),
                    received_only: false,
                    label: None,
                    distinguished: true,
                }),
                4
            ),
            "e 4 1 7 0 0 - 1"
        );
        assert_eq!(
            wire_record_line(
                &WireRecord::Message(MessageRecord {
                    from: 0,
                    to: 1,
                    send_event: 2,
                    recv_event: None,
                    send_time: 5,
                    recv_time: None,
                }),
                0
            ),
            "m 0 1 2 - 5 -"
        );
        assert_eq!(wire_record_line(&WireRecord::End, 0), "end");
        assert_eq!(wire_record_line(&WireRecord::Margin, 0), "margin");
    }
}
