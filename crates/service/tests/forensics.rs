//! Forensics integration tests: latch-triggered bundles are
//! byte-reproducible across independent server instances, the status-port
//! `dump` command captures a mid-document snapshot, and the committed
//! violating sample's bundle + `abc inspect` rendering are pinned by
//! golden files.

use std::path::PathBuf;

use abc_core::Xi;
use abc_service::client::status_command;
use abc_service::forensics::ForensicsBundle;
use abc_service::server::{start, ServerConfig};
use abc_service::{feed_stream_text, ServerHandle};
use abc_sim::Trace;

fn sample_trace() -> Trace {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../harness/tests/data/sample_clocksync.trace"
    );
    let file = std::fs::File::open(path).unwrap();
    Trace::from_reader(file, abc_sim::textio::DEFAULT_MAX_LINE_LEN).unwrap()
}

/// The committed sample's stream text with a `margin` request after every
/// event line — the exact document `abc feed --margin-every 1` sends, so
/// the committed bundle can be regenerated with the CLI.
fn sample_doc_with_margins() -> String {
    let mut doc = String::new();
    for line in sample_trace().to_stream_text().lines() {
        doc.push_str(line);
        doc.push('\n');
        if line.starts_with("e ") {
            doc.push_str("margin\n");
        }
    }
    doc
}

fn forensics_server(dir: &std::path::Path) -> ServerHandle {
    start(ServerConfig {
        shards: 1,
        forensics_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("abc-forensics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Feeds the violating sample document to a fresh forensics-enabled
/// server and returns the latch bundle's bytes (session 0, first dump).
fn latch_bundle(tag: &str) -> String {
    let dir = temp_dir(tag);
    let handle = forensics_server(&dir);
    let addr = handle.addr().to_string();
    let outcome =
        feed_stream_text(&addr, &Xi::from_integer(2), &sample_doc_with_margins()).unwrap();
    assert!(outcome.verdict.is_violation(), "sample violates at Xi = 2");
    // The latch bundle is written the moment the violation latches, which
    // precedes the `end` reply the feed call waited for.
    let bytes = std::fs::read_to_string(dir.join("session-0-0.forensics")).unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn latch_bundle_is_byte_reproducible_across_server_instances() {
    let a = latch_bundle("repro-a");
    let b = latch_bundle("repro-b");
    assert_eq!(a, b, "same input + flags must produce identical bundles");

    let bundle = ForensicsBundle::parse(&a).expect("live bundle parses");
    assert_eq!(bundle.reason, "latch");
    assert_eq!(bundle.xi, "2");
    let (latch_seq, wire) = bundle.latch.as_ref().expect("violation latched");
    assert!(wire.starts_with("zm="), "witness is wire-form: {wire}");
    assert!(
        bundle
            .timeline
            .iter()
            .any(|(_, e)| e == &format!("latch seq={latch_seq}")),
        "timeline records the latch: {:?}",
        bundle.timeline
    );
    assert!(
        bundle
            .timeline
            .iter()
            .any(|(_, e)| e.starts_with("document start")),
        "timeline records the document start"
    );
    assert!(
        bundle
            .timeline
            .iter()
            .any(|(_, e)| e.starts_with("topology processes=4")),
        "timeline records the topology: {:?}",
        bundle.timeline
    );
    // One margin sample per pre-latch event request plus the latch freeze;
    // the history must be non-empty and end at the frozen ratio 2.
    assert!(!bundle.margins.is_empty());
    assert_eq!(
        bundle.margins.last().unwrap().1,
        "2",
        "{:?}",
        bundle.margins
    );
    // The tail kept the most recent wire records, ending with the margin
    // request that followed the latching event line.
    assert!(!bundle.tail.is_empty());
    assert!(bundle.tail_total >= bundle.tail.len() as u64);
    let events = bundle
        .monitor
        .iter()
        .find(|(k, _)| k == "events")
        .map(|(_, v)| *v)
        .expect("monitor counters include events");
    assert_eq!(events, *latch_seq + 1, "counters frozen at latch time");
}

#[test]
fn committed_bundle_and_inspect_rendering_are_pinned() {
    // The committed bundle is what `abc serve --forensics-dir` writes for
    // `abc feed --margin-every 1` of the committed sample at Xi = 2; the
    // golden file is `abc inspect`'s rendering of it. Regenerate with:
    //   target/debug/abc serve --xi 2 --forensics-dir DIR  (+ feed, shutdown)
    let committed = include_str!("data/sample_violation.forensics");
    assert_eq!(
        latch_bundle("golden"),
        committed,
        "live capture drifted from the committed bundle — regenerate \
         tests/data/sample_violation.forensics and its .golden if intended"
    );
    let bundle = ForensicsBundle::parse(committed).expect("committed bundle parses");
    let golden = include_str!("data/sample_violation.inspect.golden");
    assert_eq!(
        bundle.pretty(),
        golden,
        "inspect rendering drifted from tests/data/sample_violation.inspect.golden"
    );
    // Round trip: parse ∘ render is the identity on the committed bytes.
    assert_eq!(bundle.render(), committed);
}

#[test]
fn status_port_dump_command_captures_a_mid_document_snapshot() {
    use std::io::{BufRead, BufReader, Write};

    let dir = temp_dir("dump");
    let handle = forensics_server(&dir);
    let addr = handle.addr().to_string();
    let status = handle.status_addr().to_string();

    // Stream the admissible prefix of a document and hold the connection
    // open (everything but the `end` line).
    let trace = sample_trace();
    let text = trace.to_stream_text();
    let (body, _) = text.rsplit_once("end").expect("stream text ends with end");
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut greeting = String::new();
    reader.read_line(&mut greeting).unwrap();
    {
        let mut w = &stream;
        w.write_all(b"xi 4\n").unwrap();
        w.write_all(body.as_bytes()).unwrap();
        w.flush().unwrap();
    }
    // Wait until every event is acked, so the dump sees the full prefix.
    for seq in 0..trace.events().len() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("ok {seq}"));
    }

    let reply = status_command(&status, "dump").unwrap();
    assert!(reply.contains("forensics dump requested"), "{reply}");
    // The shard notices the epoch bump on its next pass; poll briefly.
    let path = dir.join("session-0-0.forensics");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let text = loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dump bundle never appeared at {}",
            path.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let bundle = ForensicsBundle::parse(&text).expect("dump bundle parses");
    assert_eq!(bundle.reason, "request");
    assert!(bundle.latch.is_none(), "document is admissible so far");
    let events = bundle
        .monitor
        .iter()
        .find(|(k, _)| k == "events")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(
        events,
        trace.events().len() as u64,
        "live checker counters captured mid-document"
    );
    assert!(
        bundle.tail.iter().any(|l| l.starts_with("e ")),
        "tail holds wire lines: {:?}",
        bundle.tail.last()
    );
    drop(stream);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
