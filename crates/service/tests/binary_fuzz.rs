//! Adversarial-input tests for the v2 binary decoder path: truncated
//! frames, overlong/oversized varints, length prefixes past the cap,
//! unknown tags, reserved flag bits, and mid-frame disconnects. Every
//! attack must draw a clean `error …` reply (or a terminated session) —
//! never a panic — and the server must keep serving other sessions. This
//! mirrors the v1 oversized-line attack regression in `loopback.rs`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};

use abc_core::Xi;
use abc_service::feed_stream_binary;
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig};
use abc_sim::delay::BandDelay;
use abc_sim::{binio, RunLimits, Simulation, Trace};

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// Connects and completes the `proto v2` handshake; returns the stream and
/// its buffered reply reader.
fn v2_session(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_line(&mut reader), abc_service::proto::GREETING);
    (&stream)
        .write_all(format!("{}\n", abc_service::proto::PROTO_V2_REQUEST).as_bytes())
        .unwrap();
    assert_eq!(read_line(&mut reader), abc_service::proto::PROTO_V2_OK);
    (stream, reader)
}

/// After an attack, the same server must still serve a well-formed binary
/// session to completion — the liveness half of every fuzz assertion.
fn assert_still_serving(addr: &str, xi: &Xi, trace: &Trace) {
    let want = offline_verdict(trace, xi).unwrap().to_string();
    let out = feed_stream_binary(addr, xi, &trace.to_stream_binary()).unwrap();
    assert_eq!(out.verdict.to_string(), want, "server no longer serving");
}

/// Reads until the session's error line (skipping acks); asserts it cites
/// binary record positions, then confirms the server closed the session.
fn expect_error(reader: &mut BufReader<TcpStream>, needle: &str) -> String {
    loop {
        let line = read_line(reader);
        assert!(
            !line.is_empty(),
            "connection closed before an error reply arrived"
        );
        if line.starts_with("ack ") {
            continue;
        }
        assert!(
            line.starts_with("error record ") || line.starts_with("error line "),
            "expected an error reply, got {line:?}"
        );
        assert!(
            line.contains(needle),
            "error should mention {needle:?}, got {line:?}"
        );
        // Terminal: the server closes after the error drains.
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "", "no replies may follow a fatal protocol error");
        return line;
    }
}

#[test]
fn length_prefix_past_the_cap_is_rejected_from_the_prefix_alone() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(3);
    let good = clocksync_trace(10, 19, 1, 120);

    let (stream, mut reader) = v2_session(&addr);
    // A frame header claiming 100 MB — the v2 analogue of the 100 MB
    // newline-free line attack. The server must refuse at the prefix; it
    // never allocates or buffers toward a frame it will not accept.
    let mut attack = Vec::new();
    binio::push_varint(&mut attack, 100 * 1024 * 1024);
    attack.resize(attack.len() + 4096, 0xAB); // some payload behind it
    (&stream).write_all(&attack).unwrap();
    expect_error(&mut reader, "exceeds");

    assert_still_serving(&addr, &xi, &good);
    handle.join();
}

#[test]
fn overlong_and_oversized_varint_prefixes_are_rejected() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(3);
    let good = clocksync_trace(10, 19, 2, 120);

    // Non-canonical (overlong) encoding of a small length.
    let (stream, mut reader) = v2_session(&addr);
    (&stream).write_all(&[0x85, 0x80, 0x00]).unwrap();
    expect_error(&mut reader, "overlong varint");

    // A varint that never terminates within the 10-byte limit.
    let (stream, mut reader) = v2_session(&addr);
    (&stream).write_all(&[0x80; 16]).unwrap();
    expect_error(&mut reader, "varint");

    assert_still_serving(&addr, &xi, &good);
    handle.join();
}

#[test]
fn mid_frame_disconnect_draws_a_clean_error() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(3);
    let good = clocksync_trace(10, 19, 3, 120);

    let (stream, mut reader) = v2_session(&addr);
    // A well-formed prefix for a 1000-byte frame, then only 10 bytes and a
    // half-close: the EOF lands mid-frame.
    let mut attack = Vec::new();
    binio::push_varint(&mut attack, 1000);
    attack.extend_from_slice(&[0x01; 10]);
    (&stream).write_all(&attack).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    expect_error(&mut reader, "mid-frame");

    assert_still_serving(&addr, &xi, &good);
    handle.join();
}

#[test]
fn truncated_records_and_unknown_tags_inside_a_frame_are_rejected() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(3);
    let good = clocksync_trace(10, 19, 4, 120);

    // Unknown record tag.
    let (stream, mut reader) = v2_session(&addr);
    let mut frame = Vec::new();
    binio::push_varint(&mut frame, 1);
    frame.push(0xFF);
    (&stream).write_all(&frame).unwrap();
    expect_error(&mut reader, "unknown record tag");

    // Frame ends mid-record: a processes record missing its count.
    let (stream, mut reader) = v2_session(&addr);
    let mut frame = Vec::new();
    binio::push_varint(&mut frame, 1);
    frame.push(0x01); // processes tag, no varint behind it
    (&stream).write_all(&frame).unwrap();
    expect_error(&mut reader, "truncated record");

    // Reserved event flag bits.
    let (stream, mut reader) = v2_session(&addr);
    let mut frame = Vec::new();
    binio::push_varint(&mut frame, 2);
    frame.extend_from_slice(&[0x05, 0xF0]); // event tag, reserved flags
    (&stream).write_all(&frame).unwrap();
    expect_error(&mut reader, "reserved bits");

    assert_still_serving(&addr, &xi, &good);
    handle.join();
}

#[test]
fn pipelining_data_behind_the_handshake_is_refused() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(3);
    let good = clocksync_trace(10, 19, 5, 120);

    // `proto v2` and binary bytes in one write, without waiting for the
    // `proto v2 ok` reply: the strict handshake must refuse (the bytes
    // would otherwise be misparsed as text).
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_line(&mut reader), abc_service::proto::GREETING);
    let mut attack = format!("{}\n", abc_service::proto::PROTO_V2_REQUEST).into_bytes();
    attack.extend_from_slice(&binio::xi_frame("2"));
    (&stream).write_all(&attack).unwrap();
    expect_error(&mut reader, "pipelined");

    assert_still_serving(&addr, &xi, &good);
    handle.join();
}

#[test]
fn random_garbage_after_the_handshake_never_panics_the_server() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(3);
    let good = clocksync_trace(10, 19, 6, 120);

    // A deterministic xorshift garbage generator: 32 sessions × 512 bytes
    // of arbitrary frames. Every session must end in an error reply or a
    // clean close — and the server must survive all of them.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..32 {
        let (stream, mut reader) = v2_session(&addr);
        let garbage: Vec<u8> = (0..512).map(|_| (next() & 0xFF) as u8).collect();
        // The write may fail once the server poisons the session — fine.
        let _ = (&stream).write_all(&garbage);
        let _ = stream.shutdown(Shutdown::Write);
        let mut replies = String::new();
        // Must terminate (server closes); content may be acks then error.
        reader.read_to_string(&mut replies).unwrap();
        for line in replies.lines() {
            assert!(
                line.starts_with("ack ")
                    || line.starts_with("error record ")
                    || line.starts_with("error line ")
                    || line.starts_with("violation ")
                    || line.starts_with("end "),
                "unexpected reply to garbage: {line:?}"
            );
        }
    }

    assert_still_serving(&addr, &xi, &good);
    handle.join();
}
