//! Prometheus text-exposition conformance: a tiny validator for the
//! status port's `prom`/`GET /metrics` output, run against a live server
//! mid-ingestion (open session with a populated margin gauge), asserting
//! every required metric family is present and well-formed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use abc_core::Xi;
use abc_rational::Ratio;
use abc_service::client::status_command;
use abc_service::server::{start, ServerConfig};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation, Trace};

/// One parsed sample line: name, label set, value text.
struct Sample {
    name: String,
    labels: HashMap<String, String>,
    value: String,
}

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str) -> Result<HashMap<String, String>, String> {
    let mut labels = HashMap::new();
    for pair in body.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("label pair {pair:?} lacks `=`"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("label value in {pair:?} is not quoted"))?;
        if !is_metric_name(k) {
            return Err(format!("bad label name {k:?}"));
        }
        labels.insert(k.to_string(), v.to_string());
    }
    Ok(labels)
}

/// Validates one exposition body: every line is a well-formed comment or
/// sample, every sampled family is preceded by its `# HELP` + `# TYPE`,
/// histogram buckets are cumulative with `+Inf == _count`, and values
/// parse. Returns the map family → declared type.
fn validate_exposition(body: &str) -> Result<HashMap<String, String>, String> {
    let mut help: Vec<String> = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let n = i + 1;
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, text) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: HELP without text"))?;
            if !is_metric_name(name) || text.is_empty() {
                return Err(format!("line {n}: malformed HELP {line:?}"));
            }
            help.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown kind {kind:?}"));
            }
            if !help.contains(&name.to_string()) {
                return Err(format!("line {n}: TYPE {name} precedes its HELP"));
            }
            types.insert(name.to_string(), kind.to_string());
        } else if line.starts_with('#') {
            return Err(format!("line {n}: unknown comment {line:?}"));
        } else {
            let (id, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {n}: sample without value"))?;
            let (name, labels) = match id.split_once('{') {
                None => (id.to_string(), HashMap::new()),
                Some((name, rest)) => {
                    let body = rest
                        .strip_suffix('}')
                        .ok_or_else(|| format!("line {n}: unclosed label set"))?;
                    (
                        name.to_string(),
                        parse_labels(body).map_err(|e| format!("line {n}: {e}"))?,
                    )
                }
            };
            if !is_metric_name(&name) {
                return Err(format!("line {n}: bad metric name {name:?}"));
            }
            if value.parse::<f64>().is_err() {
                return Err(format!("line {n}: unparseable value {value:?}"));
            }
            // The family a sample belongs to: histogram series map back to
            // their base name.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| {
                    let base = name.strip_suffix(suf)?;
                    (types.get(base).map(String::as_str) == Some("histogram"))
                        .then(|| base.to_string())
                })
                .unwrap_or_else(|| name.clone());
            if !types.contains_key(&family) {
                return Err(format!("line {n}: sample {name} precedes its TYPE"));
            }
            samples.push(Sample {
                name,
                labels,
                value: value.to_string(),
            });
        }
    }
    // Histogram structure: cumulative buckets in declaration order, +Inf
    // bucket equal to _count, _sum present.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == format!("{family}_bucket"))
            .collect();
        if buckets.is_empty() {
            return Err(format!("{family}: histogram without buckets"));
        }
        let counts: Vec<u64> = buckets
            .iter()
            .map(|s| {
                s.value
                    .parse()
                    .map_err(|e| format!("{family}: bucket count: {e}"))
            })
            .collect::<Result<_, String>>()?;
        if counts.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("{family}: buckets not cumulative: {counts:?}"));
        }
        let last = buckets.last().expect("non-empty");
        if last.labels.get("le").map(String::as_str) != Some("+Inf") {
            return Err(format!("{family}: final bucket is not +Inf"));
        }
        for b in &buckets[..buckets.len() - 1] {
            let le = b
                .labels
                .get("le")
                .ok_or_else(|| format!("{family}: bucket without le"))?;
            le.parse::<f64>()
                .map_err(|e| format!("{family}: bucket bound {le:?}: {e}"))?;
        }
        let count = samples
            .iter()
            .find(|s| s.name == format!("{family}_count"))
            .ok_or_else(|| format!("{family}: missing _count"))?;
        if count.value != last.value {
            return Err(format!(
                "{family}: +Inf bucket {} != _count {}",
                last.value, count.value
            ));
        }
        if !samples.iter().any(|s| s.name == format!("{family}_sum")) {
            return Err(format!("{family}: missing _sum"));
        }
    }
    Ok(types)
}

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

#[test]
fn exposition_is_well_formed_with_all_required_families() {
    let handle = start(ServerConfig {
        shards: 2,
        warn_margin: Some(Ratio::from_integer(2)),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();
    let status = handle.status_addr().to_string();

    // One finished document plus one session held open mid-document with
    // an exact margin sample taken, so the per-session gauges have rows.
    let xi = Xi::from_integer(4);
    let done = clocksync_trace(1, 6, 3, 150);
    abc_service::feed_stream_text(&addr, &xi, &done.to_stream_text()).unwrap();
    let open = clocksync_trace(1, 6, 5, 150);
    let text = open.to_stream_text();
    let (body, _) = text.rsplit_once("end").expect("stream ends with end");
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut greeting = String::new();
    reader.read_line(&mut greeting).unwrap();
    {
        let mut w = &stream;
        w.write_all(format!("xi {xi}\n").as_bytes()).unwrap();
        w.write_all(body.as_bytes()).unwrap();
        w.write_all(b"margin\n").unwrap();
        w.flush().unwrap();
    }
    // Wait for the margin reply: everything written so far is ingested.
    let margin_reply = loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.starts_with("margin ") {
            break line;
        }
        assert!(line.starts_with("ok "), "unexpected reply {line:?}");
    };
    assert!(
        margin_reply.starts_with("margin "),
        "margin sample came back: {margin_reply:?}"
    );

    // Raw command form.
    let prom = status_command(&status, "prom").unwrap();
    let types = validate_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n---\n{prom}"));
    for family in [
        "abc_service_uptime_seconds",
        "abc_service_sessions_active",
        "abc_service_sessions_total",
        "abc_service_documents_total",
        "abc_service_events_total",
        "abc_service_violations_total",
        "abc_service_parse_errors_total",
        "abc_service_margin_warnings_total",
        "abc_service_margin",
        "abc_service_ingest_seconds",
        "abc_service_ack_seconds",
        "abc_service_monitor_live_events",
        "abc_service_monitor_live_arcs",
        "abc_service_monitor_pruned_events_total",
        "abc_service_session_margin",
        "abc_service_session_warning",
    ] {
        assert!(
            types.contains_key(family),
            "missing family {family}\n{prom}"
        );
    }
    // The held-open session's exact margin sample populated its gauge row.
    assert!(
        prom.lines()
            .any(|l| l.starts_with("abc_service_session_margin{session=")),
        "no per-session margin row:\n{prom}"
    );

    // HTTP scrape form: same body behind a minimal HTTP/1.0 response.
    let http = status_command(&status, "GET /metrics HTTP/1.0").unwrap();
    let (head, body) = http
        .split_once("\r\n\r\n")
        .expect("HTTP response has a header/body separator");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "{head}"
    );
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length present")
        .parse()
        .unwrap();
    assert_eq!(len, body.len(), "Content-Length matches body");
    validate_exposition(body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));

    drop(stream);
    handle.join();
}

#[test]
fn zero_session_exposition_is_well_formed() {
    // A server that has never seen a connection still scrapes cleanly:
    // all counter families at 0, full (all-zero) histogram ladders, and
    // no per-session gauge rows at all.
    let handle = start(ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let status = handle.status_addr().to_string();
    let prom = status_command(&status, "prom").unwrap();
    let types = validate_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n---\n{prom}"));
    for family in [
        "abc_service_sessions_total",
        "abc_service_forensics_dumps_total",
        "abc_service_margin",
        "abc_service_ingest_seconds",
    ] {
        assert!(
            types.contains_key(family),
            "missing family {family}\n{prom}"
        );
    }
    assert!(prom.contains("abc_service_sessions_active 0"), "{prom}");
    assert!(prom.contains("abc_service_events_total 0"), "{prom}");
    assert!(prom.contains("abc_service_margin_count 0"), "{prom}");
    assert!(
        !prom.contains("abc_service_session_margin{"),
        "no session rows without sessions:\n{prom}"
    );
    handle.join();
}

#[test]
fn margin_gauge_reregisters_across_documents_without_duplicates() {
    // One connection, two documents: the session margin gauge must appear
    // while a document has an exact sample, vanish when the document ends
    // (the gauge resets to the no-sample sentinel), and re-register for
    // the next document — exactly one row, never a duplicate.
    let handle = start(ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();
    let status = handle.status_addr().to_string();
    let xi = Xi::from_integer(4);
    let trace = clocksync_trace(1, 6, 5, 150);
    let text = trace.to_stream_text();
    let (body, end_line) = text.rsplit_once("end").expect("stream ends with end");

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut greeting = String::new();
    reader.read_line(&mut greeting).unwrap();
    let mut drive = |payload: &str, until: &str| {
        {
            let mut w = &stream;
            w.write_all(payload.as_bytes()).unwrap();
            w.flush().unwrap();
        }
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "connection closed waiting for {until:?}");
            if line.starts_with(until) {
                break;
            }
        }
    };
    let margin_rows = |prom: &str| {
        prom.lines()
            .filter(|l| l.starts_with("abc_service_session_margin{"))
            .count()
    };

    // Document 1, held before `end`, with an exact margin sample.
    drive(&format!("xi {xi}\n{body}margin\n"), "margin ");
    let prom = status_command(&status, "prom").unwrap();
    validate_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n---\n{prom}"));
    assert_eq!(margin_rows(&prom), 1, "one gauge row mid-document:\n{prom}");

    // Finish document 1: the gauge resets to no-sample and the row drops.
    drive(&format!("end{end_line}"), "end ");
    let prom = status_command(&status, "prom").unwrap();
    validate_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n---\n{prom}"));
    assert_eq!(
        margin_rows(&prom),
        0,
        "gauge cleared between documents:\n{prom}"
    );

    // Document 2 on the same connection: the gauge re-registers, one row.
    drive(&format!("{body}margin\n"), "margin ");
    let prom = status_command(&status, "prom").unwrap();
    validate_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n---\n{prom}"));
    assert_eq!(margin_rows(&prom), 1, "gauge re-registered:\n{prom}");

    drive(&format!("end{end_line}"), "end ");
    drop(stream);
    handle.join();
}
