//! Batched-ack ordering under concurrency: 8 sessions (v1 text and v2
//! binary interleaved) each feed a mix of violating and admissible
//! documents over one connection. Every v2 `ack <through>` must be
//! strictly monotone within its document, violations must arrive before
//! the ack that covers their sequence number, verdicts must match the
//! offline monitor — and while all 8 connections are still open, the
//! status port's per-session counters must be exact.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;

use abc_core::Xi;
use abc_service::client::status_command;
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig};
use abc_sim::delay::BandDelay;
use abc_sim::{binio, RunLimits, Simulation, Trace};

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// One document's transcript (through its `end` line).
fn doc_transcript(reader: &mut impl BufRead) -> Vec<String> {
    let mut out = Vec::new();
    loop {
        let line = read_line(reader);
        assert!(!line.is_empty(), "connection closed mid-document");
        let done = line.starts_with("end ");
        out.push(line);
        if done {
            return out;
        }
    }
}

/// Checks one v2 document transcript: acks strictly monotone, at most one
/// violation and it precedes its covering ack, `end` last and correct.
fn check_v2_transcript(transcript: &[String], want_end: &str) {
    let mut last_ack: Option<usize> = None;
    let mut violation_seq: Option<usize> = None;
    for (i, line) in transcript.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("ack ") {
            let through: usize = rest.parse().unwrap();
            if let Some(prev) = last_ack {
                assert!(
                    through > prev,
                    "acks must be strictly monotone: {through} after {prev}"
                );
            }
            last_ack = Some(through);
        } else if let Some(rest) = line.strip_prefix("violation ") {
            assert!(
                violation_seq.is_none(),
                "v2 reports one violation per document, got a second: {line:?}"
            );
            let seq: usize = rest.split_whitespace().next().unwrap().parse().unwrap();
            // The violation precedes the ack that covers it: no prior ack
            // may have acknowledged the violating event already.
            if let Some(prev) = last_ack {
                assert!(
                    prev < seq,
                    "ack {prev} covered violating event {seq} before the violation reply"
                );
            }
            violation_seq = Some(seq);
        } else {
            assert!(
                line.starts_with("end "),
                "unexpected v2 reply {line:?} in {transcript:?}"
            );
            assert_eq!(i, transcript.len() - 1, "end must close the transcript");
        }
    }
    assert_eq!(transcript.last().unwrap(), want_end);
    if want_end.starts_with("end violation") {
        assert!(violation_seq.is_some(), "latch reply missing before end");
    }
}

/// Checks one v1 document transcript: `ok` seqs strictly monotone, every
/// post-latch event echoes the latched violation, `end` last and correct.
fn check_v1_transcript(transcript: &[String], want_end: &str) {
    let mut last_ok: Option<usize> = None;
    let mut latched: Option<String> = None;
    for line in transcript {
        if let Some(rest) = line.strip_prefix("ok ") {
            assert!(latched.is_none(), "no `ok` may follow a latched violation");
            let seq: usize = rest.parse().unwrap();
            if let Some(prev) = last_ok {
                assert!(seq > prev, "ok seqs must be monotone: {seq} after {prev}");
            }
            last_ok = Some(seq);
        } else if line.starts_with("violation ") {
            match &latched {
                Some(first) => assert_eq!(line, first, "latched echoes must repeat"),
                None => latched = Some(line.clone()),
            }
        } else {
            assert!(line.starts_with("end "), "unexpected v1 reply {line:?}");
        }
    }
    assert_eq!(transcript.last().unwrap(), want_end);
}

#[test]
fn mixed_protocol_sessions_keep_acks_ordered_and_counters_exact() {
    let xi = Xi::from_fraction(3, 2);
    let admissible = [
        clocksync_trace(10, 19, 11, 200),
        clocksync_trace(10, 19, 12, 200),
    ];
    let violating: Vec<Trace> = (0..64)
        .map(|s| clocksync_trace(1, 6, s, 200))
        .filter(|t| offline_verdict(t, &xi).unwrap().is_violation())
        .take(2)
        .collect();
    assert_eq!(violating.len(), 2, "need two violating seeds");
    // Interleaved: violating and admissible alternate on every session.
    let docs: Vec<&Trace> = vec![&violating[0], &admissible[0], &violating[1], &admissible[1]];
    let total_events: usize = docs.iter().map(|t| t.events().len()).sum();
    let ends: Vec<String> = docs
        .iter()
        .map(|t| format!("end {}", offline_verdict(t, &xi).unwrap()))
        .collect();

    let handle = start(ServerConfig {
        shards: 3,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let status_addr = handle.status_addr().to_string();

    // Two rendezvous: all sessions done feeding (connections still open),
    // then release-to-close after the status check.
    let fed = Barrier::new(9);
    let release = Barrier::new(9);

    let (peers, page): (Vec<String>, String) = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for i in 0..8usize {
            let binary = i % 2 == 0;
            let (addr, xi, docs, ends, fed, release) = (&addr, &xi, &docs, &ends, &fed, &release);
            workers.push(scope.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let peer = stream.local_addr().unwrap().to_string();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                assert_eq!(read_line(&mut reader), abc_service::proto::GREETING);
                let mut w = &stream;
                if binary {
                    w.write_all(format!("{}\n", abc_service::proto::PROTO_V2_REQUEST).as_bytes())
                        .unwrap();
                    assert_eq!(read_line(&mut reader), abc_service::proto::PROTO_V2_OK);
                    w.write_all(&binio::xi_frame(&xi.to_string())).unwrap();
                } else {
                    w.write_all(format!("xi {xi}\n").as_bytes()).unwrap();
                }
                for (trace, want_end) in docs.iter().zip(ends) {
                    if binary {
                        w.write_all(&trace.to_stream_binary()).unwrap();
                        check_v2_transcript(&doc_transcript(&mut reader), want_end);
                    } else {
                        w.write_all(trace.to_stream_text().as_bytes()).unwrap();
                        check_v1_transcript(&doc_transcript(&mut reader), want_end);
                    }
                }
                fed.wait(); // all documents acknowledged; stay connected
                release.wait(); // status assertions done; drop the stream
                peer
            }));
        }

        fed.wait();
        // All 8 sessions still connected, every document acknowledged:
        // the status page counters must be exact, per session.
        let page = status_command(&status_addr, "metrics").unwrap();
        let rows: Vec<&str> = page.lines().filter(|l| l.starts_with("session ")).collect();
        assert_eq!(rows.len(), 8, "expected 8 live session rows:\n{page}");
        for row in &rows {
            assert!(
                row.contains(&format!("events={total_events} ")),
                "inexact event counter in {row:?} (want events={total_events})"
            );
            assert!(
                row.contains("violations=2 "),
                "inexact violation counter in {row:?} (want violations=2)"
            );
        }
        release.wait();
        let peers = workers.into_iter().map(|w| w.join().unwrap()).collect();
        (peers, page)
    });

    // Every connection got its own row, matched by peer address.
    for peer in &peers {
        assert!(
            page.contains(&format!("peer={peer} ")),
            "no session row for peer {peer}:\n{page}"
        );
    }

    handle.join();
}
