//! A panic while holding the session-table mutex must not take the
//! server down with it: `lock_table` recovers from the poisoned state
//! (the table only carries status metadata, so the data is still
//! consistent), and every subsequent client is served normally.

use abc_core::Xi;
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig};
use abc_service::{client::status_command, feed_stream_text};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation, Trace};

fn clocksync_trace(seed: u64) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(10, 19, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: 120,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

#[test]
fn server_survives_a_poisoned_session_table() {
    let handle = start(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();
    let status = handle.status_addr().to_string();
    let xi = Xi::from_integer(2);

    // A document before the poison, so the table has seen real traffic.
    let trace = clocksync_trace(5);
    let want = offline_verdict(&trace, &xi).unwrap().to_string();
    let outcome = feed_stream_text(&addr, &xi, &trace.to_stream_text()).unwrap();
    assert_eq!(outcome.verdict.to_string(), want);

    // Poison the mutex: a scratch thread panics while holding the lock.
    handle.poison_session_table_for_test();

    // Every lock-table consumer still works: the snapshot API (the dead-
    // session sweep is asynchronous, so only an upper bound is stable)…
    let sessions = handle.sessions();
    assert!(sessions.len() <= 1, "at most the swept session lingers");

    // …the accept/session paths (a full document round-trips)…
    let trace2 = clocksync_trace(9);
    let want2 = offline_verdict(&trace2, &xi).unwrap().to_string();
    let outcome2 = feed_stream_text(&addr, &xi, &trace2.to_stream_text()).unwrap();
    assert_eq!(outcome2.verdict.to_string(), want2);

    // …and the status responder, which walks the table for its rows.
    let page = status_command(&status, "metrics").unwrap();
    assert!(page.contains("abc_service_documents_total 2"), "{page}");

    handle.join();
}
