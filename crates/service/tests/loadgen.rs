//! The acceptance-criterion test: `loadgen` over 8 concurrent connections
//! against a local server sustains the throughput bar while every
//! per-session verdict matches the offline monitor byte for byte.
//!
//! Verdict determinism is always asserted. The ≥100k events/s aggregate
//! bar is hardware-gated (release-built, ≥8 hardware threads — CI-class);
//! debug builds and small machines assert proportionally weaker bars so
//! the test cannot flake on timing, only on correctness.

use abc_core::Xi;
use abc_service::client::{run_loadgen, LoadgenDoc};
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation, Trace};

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

#[test]
fn loadgen_8_connections_sustains_throughput_with_exact_verdicts() {
    let xi = Xi::from_fraction(3, 2);
    // 32 documents, ~2000 events each: a mix of comfortable (admissible)
    // and reordering (violating) bands.
    let docs: Vec<LoadgenDoc> = (0..32u64)
        .map(|s| {
            let trace = if s % 2 == 0 {
                clocksync_trace(10, 19, s, 2_000)
            } else {
                clocksync_trace(1, 6, s, 2_000)
            };
            LoadgenDoc {
                label: format!("doc{s}"),
                events: trace.events().len(),
                expect: Some(offline_verdict(&trace, &xi).unwrap()),
                binary: Some(trace.to_stream_binary()),
                text: trace.to_stream_text(),
            }
        })
        .collect();
    let total_events: usize = docs.iter().map(|d| d.events).sum();

    let handle = start(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Warm-up round (connection setup, allocator), then the timed run.
    let _ = run_loadgen(&addr, &xi, &docs[..4], 2, false).unwrap();
    let report = run_loadgen(&addr, &xi, &docs, 8, false).unwrap();

    // Correctness is unconditional: every verdict byte-identical to the
    // offline monitor on the same trace.
    assert_eq!(
        report.mismatches, 0,
        "online verdicts diverged from offline"
    );
    assert_eq!(report.outcomes.len(), docs.len());
    assert_eq!(report.total_events, total_events);
    assert!(report.violations > 0 && report.violations < docs.len());

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let eps = report.events_per_sec;
    eprintln!(
        "loadgen: {} events over {:?} = {eps:.0} events/s on {cores} hardware threads \
         (p50={:?} p99={:?})",
        report.total_events,
        report.wall,
        report.latency_percentiles.0,
        report.latency_percentiles.2,
    );
    // The 100k events/s acceptance bar presumes an optimized build on
    // CI-class hardware; scale it down for debug builds / small hosts.
    let bar = if cfg!(debug_assertions) {
        10_000.0
    } else if cores >= 8 {
        100_000.0
    } else if cores >= 4 {
        50_000.0
    } else {
        10_000.0
    };
    assert!(
        eps >= bar,
        "aggregate throughput {eps:.0} events/s below the {bar:.0} bar \
         ({cores} hardware threads, debug={})",
        cfg!(debug_assertions)
    );

    // The same fleet over the v2 binary framing: verdicts stay exact and
    // acks coalesce (fewer progress replies than events).
    let report_v2 = run_loadgen(&addr, &xi, &docs, 8, true).unwrap();
    assert_eq!(
        report_v2.mismatches, 0,
        "binary verdicts diverged from offline"
    );
    assert_eq!(report_v2.protocol, "v2");
    assert_eq!(report_v2.total_events, total_events);
    assert!(
        report_v2.acks < report_v2.total_events,
        "batched acks should coalesce: {} acks for {} events",
        report_v2.acks,
        report_v2.total_events
    );
    handle.join();
}
