//! Differential property tests for the two wire framings: random
//! clocksync and gossip traces fed over a text v1 session and a binary v2
//! session must yield **byte-identical verdict streams** — and both must
//! match the offline monitor on the same trace. Alongside, the encoder
//! round-trip property: `to_stream_binary` → `Trace::from_binary` rebuilds
//! the same document as the text stream.
//!
//! The v1 stream carries per-event `ok`/echoed-violation replies and the
//! v2 stream coalesced `ack`s; the *verdict stream* (violation latches in
//! order, deduplicated of v1's per-event echoes, plus the `end` line) is
//! the protocol-independent content the differential assertions compare.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use abc_core::{ProcessId, Xi};
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig, ServerHandle};
use abc_service::{feed_stream_binary, feed_stream_text};
use abc_sim::delay::BandDelay;
use abc_sim::{binio, Context, Process, RunLimits, Simulation, Trace};
use proptest::prelude::*;

/// One shared loopback server for every proptest case (spawning a server
/// per case would dominate the runtime).
fn server_addr() -> String {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER
        .get_or_init(|| start(ServerConfig::default()).expect("bind loopback server"))
        .addr()
        .to_string()
}

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

/// A randomized gossiping process (same shape as the simulator's own
/// property tests): forwards a decremented token to an arithmetically
/// chosen peer, so topologies and message depths vary per case.
#[derive(Clone, Debug)]
struct Gossip {
    fanout: usize,
    state: u64,
}

impl Process<u64> for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        let n = ctx.num_processes();
        for i in 0..self.fanout.min(n) {
            ctx.send(ProcessId((ctx.me().0 + i + 1) % n), 8);
        }
        ctx.set_label(self.state);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: ProcessId, msg: &u64) {
        self.state = self.state.wrapping_add(*msg);
        if *msg > 0 {
            let n = ctx.num_processes();
            ctx.send(ProcessId((from.0 + self.state as usize) % n), msg - 1);
        }
        ctx.set_label(self.state);
    }
}

fn gossip_trace(n: usize, fanout: usize, lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..n {
        sim.add_process(Gossip { fanout, state: 0 });
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// Collects one document's reply transcript (everything after the
/// greeting/handshake, through the `end` line) into the verdict stream:
/// violation lines deduplicated of consecutive repeats (v1 echoes the
/// latched violation per event; v2 sends it once) plus the `end` line.
fn verdict_stream(reader: &mut impl BufRead, progress: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    loop {
        let line = read_line(reader);
        if line.starts_with("violation ") {
            if out.last().map(String::as_str) != Some(line.as_str()) {
                out.push(line);
            }
        } else if line.starts_with("end ") {
            out.push(line);
            return out;
        } else {
            assert!(
                line.starts_with(progress),
                "unexpected reply {line:?} (expected {progress}*)"
            );
        }
    }
}

/// Feeds one document over a raw v1 text session; returns the verdict
/// stream.
fn raw_feed_text(addr: &str, xi: &Xi, doc: &str) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_line(&mut reader), abc_service::proto::GREETING);
    let mut w = &stream;
    w.write_all(format!("xi {xi}\n").as_bytes()).unwrap();
    w.write_all(doc.as_bytes()).unwrap();
    verdict_stream(&mut reader, "ok ")
}

/// Feeds one document over a raw v2 binary session (full `proto v2`
/// handshake, xi as a binary record); returns the verdict stream.
fn raw_feed_binary(addr: &str, xi: &Xi, doc: &[u8]) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_line(&mut reader), abc_service::proto::GREETING);
    let mut w = &stream;
    w.write_all(format!("{}\n", abc_service::proto::PROTO_V2_REQUEST).as_bytes())
        .unwrap();
    assert_eq!(read_line(&mut reader), abc_service::proto::PROTO_V2_OK);
    w.write_all(&binio::xi_frame(&xi.to_string())).unwrap();
    w.write_all(doc).unwrap();
    verdict_stream(&mut reader, "ack ")
}

/// The core differential assertion: text v1, binary v2 (raw sessions and
/// the client helpers), and the offline monitor all agree byte for byte.
fn assert_protocols_agree(trace: &Trace, xi: &Xi) {
    let addr = server_addr();
    let offline = offline_verdict(trace, xi).unwrap().to_string();
    let text = trace.to_stream_text();
    let bin = trace.to_stream_binary();

    let v1 = raw_feed_text(&addr, xi, &text);
    let v2 = raw_feed_binary(&addr, xi, &bin);
    assert_eq!(v1, v2, "verdict streams diverged between v1 and v2");
    assert_eq!(
        v1.last().unwrap(),
        &format!("end {offline}"),
        "online end line diverged from the offline monitor"
    );

    // The client helpers reach the same verdict through both framings.
    let out_text = feed_stream_text(&addr, xi, &text).unwrap();
    let out_bin = feed_stream_binary(&addr, xi, &bin).unwrap();
    assert_eq!(out_text.verdict.to_string(), offline);
    assert_eq!(out_bin.verdict.to_string(), offline);
    // Batched acks cover every event exactly.
    assert_eq!(out_bin.acked_events, trace.events().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random clocksync bands (admissible and violating alike): the two
    /// framings and the offline monitor agree byte for byte.
    #[test]
    fn clocksync_verdicts_identical_across_protocols(
        lo in 1u64..12,
        spread in 0u64..12,
        seed in any::<u64>(),
        events in 120usize..400,
    ) {
        let trace = clocksync_trace(lo, lo + spread, seed, events);
        let xi = Xi::from_fraction(3, 2);
        assert_protocols_agree(&trace, &xi);
    }

    /// Random gossip topologies: same differential guarantee on a
    /// non-clocksync workload with labels and varied fan-out.
    #[test]
    fn gossip_verdicts_identical_across_protocols(
        n in 2usize..6,
        fanout in 1usize..4,
        lo in 1u64..15,
        spread in 0u64..20,
        seed in any::<u64>(),
    ) {
        let trace = gossip_trace(n, fanout, lo, lo + spread, seed, 300);
        let xi = Xi::from_fraction(5, 2);
        assert_protocols_agree(&trace, &xi);
    }

    /// Encoder round trip: binary encode → decode rebuilds the same
    /// document as the text stream (stream-text rendering is the
    /// canonical form both framings must preserve).
    #[test]
    fn binary_roundtrips_to_the_text_stream(
        lo in 1u64..12,
        spread in 0u64..12,
        seed in any::<u64>(),
        events in 50usize..300,
    ) {
        let trace = clocksync_trace(lo, lo + spread, seed, events);
        let rebuilt = Trace::from_binary(&trace.to_stream_binary()).unwrap();
        prop_assert_eq!(rebuilt.to_stream_text(), trace.to_stream_text());
        prop_assert_eq!(rebuilt.to_stream_binary(), trace.to_stream_binary());
    }
}
