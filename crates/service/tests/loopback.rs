//! Loopback integration tests: concurrent multi-client ingestion with
//! byte-identical verdicts vs. the offline monitor, malformed-frame
//! handling, oversized-line rejection, multi-document connections, the
//! committed sample trace, and status-port metrics/shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use abc_core::Xi;
use abc_service::client::status_command;
use abc_service::proto::offline_verdict;
use abc_service::server::{start, ServerConfig};
use abc_service::{feed_stream_text, ServerHandle};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation, Trace};

fn clocksync_trace(lo: u64, hi: u64, seed: u64, events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn server(shards: usize) -> ServerHandle {
    start(ServerConfig {
        shards,
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

#[test]
fn eight_concurrent_clients_get_byte_identical_verdicts() {
    let handle = server(3);
    let addr = handle.addr().to_string();
    // Half the documents run a comfortable band (admissible at Xi = 3/2),
    // half a wide reordering band (violating) — both verdicts exercised.
    let xi = Xi::from_fraction(3, 2);
    let traces: Vec<Trace> = (0..16u64)
        .map(|s| {
            if s % 2 == 0 {
                clocksync_trace(10, 19, s, 150)
            } else {
                clocksync_trace(1, 6, s, 150)
            }
        })
        .collect();
    let offline: Vec<String> = traces
        .iter()
        .map(|t| offline_verdict(t, &xi).unwrap().to_string())
        .collect();
    assert!(
        offline.iter().any(|v| v.starts_with("violation"))
            && offline.iter().any(|v| v.starts_with("admissible")),
        "seed set must exercise both verdicts: {offline:?}"
    );

    let results: Vec<Vec<(usize, String)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..8 {
            let addr = &addr;
            let traces = &traces;
            let xi = &xi;
            handles.push(scope.spawn(move || {
                let mut got = Vec::new();
                // Each of the 8 concurrent clients feeds two documents,
                // each over its own connection.
                for k in [client, client + 8] {
                    let outcome = feed_stream_text(addr, xi, &traces[k].to_stream_text()).unwrap();
                    got.push((k, outcome.verdict.to_string()));
                }
                got
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for per_client in results {
        for (k, verdict) in per_client {
            assert_eq!(
                verdict, offline[k],
                "online/offline verdict mismatch for trace {k}"
            );
        }
    }
    let m = handle.metrics();
    assert_eq!(
        m.documents.load(std::sync::atomic::Ordering::Relaxed),
        16,
        "all documents accounted"
    );
    handle.join();
}

fn read_reply_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

#[test]
fn malformed_frame_gets_error_reply_and_server_stays_up() {
    let handle = server(2);
    let addr = handle.addr().to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(b"this is not a trace header\n").unwrap();
    }
    let reply = read_reply_line(&mut reader);
    assert!(
        reply.starts_with("error line 1:"),
        "expected error reply, got {reply:?}"
    );
    // The connection closes after the error…
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty());

    // …but the server keeps serving new clients.
    let xi = Xi::from_integer(2);
    let trace = clocksync_trace(10, 19, 7, 120);
    let outcome = feed_stream_text(&addr, &xi, &trace.to_stream_text()).unwrap();
    assert_eq!(
        outcome.verdict.to_string(),
        offline_verdict(&trace, &xi).unwrap().to_string()
    );
    assert_eq!(
        handle
            .metrics()
            .parse_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    handle.join();
}

#[test]
fn oversized_line_is_rejected_without_buffering() {
    let handle = server(1);
    let addr = handle.addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    // A newline-free firehose: the server must reject at the line cap, not
    // accumulate it. (The write side may hit a reset once the server
    // closes — that is the expected outcome, not a test failure.)
    let chunk = vec![b'x'; 64 * 1024];
    let mut w = &stream;
    for _ in 0..64 {
        if w.write_all(&chunk).is_err() {
            break;
        }
    }
    let reply = read_reply_line(&mut reader);
    assert!(
        reply.starts_with("error line 1:") && reply.contains("exceeds"),
        "expected line-cap error, got {reply:?}"
    );
    handle.join();
}

#[test]
fn one_connection_carries_many_documents() {
    let handle = server(2);
    let addr = handle.addr().to_string();
    let xi = Xi::from_fraction(3, 2);
    let admissible = clocksync_trace(10, 19, 3, 120);
    let violating = (0..32)
        .map(|s| clocksync_trace(1, 6, s, 150))
        .find(|t| offline_verdict(t, &xi).unwrap().is_violation())
        .expect("some seed violates at Xi = 3/2");

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(format!("xi {xi}\n").as_bytes()).unwrap();
    }
    // Three documents back to back on one connection; each gets a fresh
    // checker, so verdicts do not bleed across documents.
    for (trace, want) in [
        (&admissible, offline_verdict(&admissible, &xi).unwrap()),
        (&violating, offline_verdict(&violating, &xi).unwrap()),
        (&admissible, offline_verdict(&admissible, &xi).unwrap()),
    ] {
        {
            let mut w = &stream;
            w.write_all(trace.to_stream_text().as_bytes()).unwrap();
        }
        let verdict = loop {
            let line = read_reply_line(&mut reader);
            if let Some(rest) = line.strip_prefix("end ") {
                break rest.to_string();
            }
            assert!(
                line.starts_with("ok ") || line.starts_with("violation "),
                "unexpected reply {line:?}"
            );
        };
        assert_eq!(verdict, want.to_string());
    }
    handle.join();
}

#[test]
fn unterminated_final_line_before_half_close_still_yields_a_verdict() {
    // A client may strip the trailing newline from `end` and half-close
    // immediately: the final line is still a line, and the verdict must
    // still come back (EOF flushes the line assembler server-side).
    let handle = server(1);
    let addr = handle.addr().to_string();
    let xi = Xi::from_integer(2);
    let trace = clocksync_trace(10, 19, 5, 120);
    let doc = trace.to_stream_text();
    let doc = doc.strip_suffix('\n').unwrap();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(format!("xi {xi}\n").as_bytes()).unwrap();
        w.write_all(doc.as_bytes()).unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut replies = String::new();
    reader.read_to_string(&mut replies).unwrap();
    let want = offline_verdict(&trace, &xi).unwrap();
    assert!(
        replies.lines().any(|l| l == format!("end {want}")),
        "no verdict in replies: …{}",
        &replies[replies.len().saturating_sub(200)..]
    );
    handle.join();
}

#[test]
fn committed_sample_trace_round_trips_through_the_service() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../harness/tests/data/sample_clocksync.trace"
    );
    let file = std::fs::File::open(path).unwrap();
    let trace = Trace::from_reader(file, abc_sim::textio::DEFAULT_MAX_LINE_LEN).unwrap();

    let handle = server(2);
    let addr = handle.addr().to_string();
    // The committed sample has max relevant-cycle ratio 3: violating at
    // Xi = 2, admissible at Xi = 4 — and the service verdicts match the
    // offline monitor byte for byte.
    for xi in [Xi::from_integer(2), Xi::from_integer(4)] {
        let outcome = feed_stream_text(&addr, &xi, &trace.to_stream_text()).unwrap();
        let want = offline_verdict(&trace, &xi).unwrap();
        assert_eq!(outcome.verdict.to_string(), want.to_string());
        assert_eq!(outcome.verdict.is_violation(), xi == Xi::from_integer(2));
    }
    handle.join();
}

#[test]
fn invalid_xi_line_is_a_protocol_error() {
    let handle = server(1);
    let addr = handle.addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(b"xi 1/2\n").unwrap(); // Xi must exceed 1
    }
    let reply = read_reply_line(&mut reader);
    assert!(reply.starts_with("error line 1:"), "{reply:?}");
    handle.join();
}

#[test]
fn status_port_serves_metrics_and_shutdown() {
    let handle = server(2);
    let addr = handle.addr().to_string();
    let status = handle.status_addr().to_string();
    let xi = Xi::from_integer(2);
    let trace = clocksync_trace(10, 19, 11, 120);
    feed_stream_text(&addr, &xi, &trace.to_stream_text()).unwrap();

    let page = status_command(&status, "metrics").unwrap();
    assert!(page.contains("abc_service_events_total 120"), "{page}");
    assert!(page.contains("abc_service_documents_total 1"), "{page}");
    assert!(status_command(&status, "frobnicate")
        .unwrap()
        .contains("unknown command"));

    let bye = status_command(&status, "shutdown").unwrap();
    assert!(bye.contains("shutting down"), "{bye}");
    assert!(handle.is_stopping());
    // Every thread exits: join() returns.
    handle.join();
}

#[test]
fn warn_margin_flips_warning_once_and_latch_matches_offline() {
    use abc_rational::Ratio;

    // The committed sample trace's margin climbs 1 → 2 → 3. Monitored at
    // Xi = 3 with a warning threshold of 2, the session enters the
    // warning band (margin 2, still admissible) well before the latch at
    // ratio 3.
    let handle = start(ServerConfig {
        shards: 1,
        warn_margin: Some(Ratio::from_integer(2)),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../harness/tests/data/sample_clocksync.trace"
    );
    let file = std::fs::File::open(path).unwrap();
    let trace = Trace::from_reader(file, abc_sim::textio::DEFAULT_MAX_LINE_LEN).unwrap();
    let xi = Xi::from_integer(3);

    // Interleave an on-demand margin request after every event line.
    let mut doc = String::new();
    for line in trace.to_stream_text().lines() {
        doc.push_str(line);
        doc.push('\n');
        if line.starts_with("e ") {
            doc.push_str("margin\n");
        }
    }
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(format!("xi {xi}\n").as_bytes()).unwrap();
        w.write_all(doc.as_bytes()).unwrap();
        w.flush().unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut replies = String::new();
    reader.read_to_string(&mut replies).unwrap();

    let mut margins: Vec<Option<Ratio>> = Vec::new();
    let mut verdict = None;
    for line in replies.lines() {
        if let Some(rest) = line.strip_prefix("margin ") {
            margins.push(if rest == "none" {
                None
            } else {
                let ratio = rest.split_whitespace().next().unwrap();
                Some(ratio.parse().unwrap())
            });
        } else if let Some(rest) = line.strip_prefix("end ") {
            verdict = Some(rest.to_string());
        }
    }
    // One sample per event, tightening monotonically (None sorts below
    // any formed margin).
    assert_eq!(margins.len(), trace.events().len());
    for pair in margins.windows(2) {
        assert!(pair[0] <= pair[1], "margin loosened: {pair:?}");
    }
    // The session passed through the warning band [2, 3) while still
    // admissible…
    let two = Ratio::from_integer(2);
    let three = Ratio::from_integer(3);
    assert!(
        margins.iter().flatten().any(|r| two <= *r && *r < three),
        "no in-band sample: {margins:?}"
    );
    // …flipping the warning exactly once despite many samples at or
    // above the threshold…
    assert_eq!(
        handle
            .metrics()
            .margin_warnings
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // …and the subsequent latch is byte-identical to the offline monitor.
    let offline = offline_verdict(&trace, &xi).unwrap();
    assert!(offline.is_violation(), "sample trace latches at Xi = 3");
    assert_eq!(verdict.as_deref(), Some(offline.to_string().as_str()));
    handle.join();
}

#[test]
fn prune_horizon_bounds_session_memory_with_identical_verdicts() {
    // A server with a 256-event prune horizon: long sessions must compact
    // their monitors (live_events stays bounded, pruned_events grows), the
    // status page must expose the per-session memory rows, and every
    // verdict must stay byte-identical to the offline monitor.
    let handle = start(ServerConfig {
        shards: 2,
        prune_horizon: Some(256),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();
    let status = handle.status_addr().to_string();
    let xi = Xi::from_fraction(3, 2);

    // Feed a long admissible document but hold the connection open just
    // before its `end` line, so the status page shows the live session.
    let trace = clocksync_trace(10, 19, 21, 4_000);
    let text = trace.to_stream_text();
    let (body, end_line) = text.rsplit_once("end").expect("stream text ends with end");
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(body.as_bytes()).unwrap();
        w.flush().unwrap();
    }
    // Acks flow while we stream; wait until every event is ingested.
    let events = trace.events().len();
    for seq in 0..events {
        let line = read_reply_line(&mut reader);
        assert_eq!(line, format!("ok {seq}"), "event {seq}");
    }
    // The session is mid-document: its monitor-memory row must show deep
    // compaction and a bounded live window.
    let page = status_command(&status, "metrics").unwrap();
    let row = page
        .lines()
        .find(|l| l.starts_with("session "))
        .unwrap_or_else(|| panic!("no session row in:\n{page}"));
    let field = |key: &str| -> u64 {
        row.split_whitespace()
            .find_map(|f| f.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("row {row:?} lacks {key}"))
            .parse()
            .unwrap_or_else(|_| panic!("row {row:?} field {key} is not a number"))
    };
    assert_eq!(field("events"), events as u64);
    assert!(field("pruned_events") > 3_000, "row: {row}");
    assert!(field("live_events") < 1_000, "row: {row}");
    assert!(field("live_arcs") > 0, "row: {row}");
    assert!(
        field("live_events") + field("pruned_events") == events as u64,
        "live + pruned account for every event: {row}"
    );
    // Aggregate gauges mirror the single session.
    assert!(
        page.contains(&format!(
            "abc_service_monitor_pruned_events_total {}",
            field("pruned_events")
        )),
        "{page}"
    );
    // Finish the document: the verdict matches the offline monitor.
    {
        let mut w = &stream;
        w.write_all(format!("end{end_line}").as_bytes()).unwrap();
        w.flush().unwrap();
    }
    let verdict = read_reply_line(&mut reader);
    assert_eq!(
        verdict,
        format!("end {}", offline_verdict(&trace, &xi).unwrap()),
    );
    drop(stream);

    // A violating document through the same pruning server: byte-identical
    // violation verdict (witness wire form included).
    let violating = clocksync_trace(1, 6, 3, 4_000);
    let outcome = feed_stream_text(&addr, &xi, &violating.to_stream_text()).unwrap();
    let offline = offline_verdict(&violating, &xi).unwrap().to_string();
    assert!(offline.starts_with("violation"), "seed picks a violation");
    assert_eq!(outcome.verdict.to_string(), offline);
    handle.join();
}

#[test]
fn stale_send_reference_beyond_horizon_is_a_clean_protocol_error() {
    // With a tiny horizon, a client naming a send event older than the
    // compacted sidecar gets a parse error citing the horizon — the server
    // survives and keeps serving.
    let handle = start(ServerConfig {
        shards: 1,
        prune_horizon: Some(2),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr().to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(b"abc-trace v1\nprocesses 2\nfaulty\n").unwrap();
        // A prompt ping-pong chain between p0 and p1 pushes the horizon
        // forward (each receive names only the immediately previous event)…
        w.write_all(b"e 0 0 0 - 0 - 0\ne 1 1 0 - 0 - 0\n").unwrap();
        for seq in 2..12usize {
            let (from, to) = ((seq - 1) % 2, seq % 2);
            let send_time = if seq == 2 { 0 } else { seq - 1 };
            let msg = seq - 2;
            w.write_all(
                format!(
                    "m {from} {to} {prev} {seq} {send_time} {seq}\n\
                     e {seq} {to} {seq} {msg} 0 - 0\n",
                    prev = seq - 1
                )
                .as_bytes(),
            )
            .unwrap();
        }
        // …then an `m` line names send event 0, far below the horizon.
        w.write_all(b"m 0 1 0 99 0 50\n").unwrap();
        w.flush().unwrap();
    }
    let mut saw_error = false;
    loop {
        let line = read_reply_line(&mut reader);
        if line.is_empty() {
            break;
        }
        if line.starts_with("error line") {
            assert!(line.contains("prune horizon"), "got {line:?}");
            saw_error = true;
            break;
        }
        assert!(line.starts_with("ok "), "unexpected reply {line:?}");
    }
    assert!(saw_error, "stale reference must be rejected");

    // Server still serves fresh clients whose references respect the
    // horizon (a prompt ping-pong chain names only the previous event).
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_reply_line(&mut reader), abc_service::proto::GREETING);
    {
        let mut w = &stream;
        w.write_all(b"abc-trace v1\nprocesses 2\nfaulty\n").unwrap();
        w.write_all(b"e 0 0 0 - 0 - 0\ne 1 1 0 - 0 - 0\n").unwrap();
        for seq in 2..12usize {
            let (from, to) = ((seq - 1) % 2, seq % 2);
            let send_time = if seq == 2 { 0 } else { seq - 1 };
            let msg = seq - 2;
            w.write_all(
                format!(
                    "m {from} {to} {prev} {seq} {send_time} {seq}\n\
                     e {seq} {to} {seq} {msg} 0 - 0\n",
                    prev = seq - 1
                )
                .as_bytes(),
            )
            .unwrap();
        }
        w.write_all(b"end\n").unwrap();
        w.flush().unwrap();
    }
    for seq in 0..12 {
        assert_eq!(read_reply_line(&mut reader), format!("ok {seq}"));
    }
    assert_eq!(read_reply_line(&mut reader), "end admissible events=12");
    handle.join();
}
