//! The binary-framing speedup bar: single-session ingest over the v2
//! binary framing must beat the v1 text path by the documented multiple.
//!
//! Correctness (identical verdicts and full ack coverage) is asserted
//! unconditionally. The throughput ratio is hardware-gated, following the
//! repo's loadgen precedent: debug builds assert nothing about speed,
//! single-core hosts assert a conservative ≥2× (protocol work and client
//! share one core, and scheduler noise is large), and CI-class hosts
//! (release, ≥4 hardware threads) assert the full ≥3× bar.

use std::time::Instant;

use abc_core::Xi;
use abc_service::server::{start, ServerConfig};
use abc_service::{feed_stream_binary, feed_stream_text};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation, Trace};

fn clocksync_trace(events: usize) -> Trace {
    let mut sim = Simulation::new(BandDelay::new(1, 4, 42));
    for _ in 0..4 {
        sim.add_process(abc_clocksync::TickGen::new(4, 1));
    }
    sim.run(RunLimits {
        max_events: events,
        max_time: u64::MAX,
    });
    sim.trace().clone()
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn binary_framing_beats_text_by_the_documented_multiple() {
    let xi = Xi::from_integer(5);
    let trace = clocksync_trace(10_000);
    let events = trace.events().len();
    let text = trace.to_stream_text();
    let bin = trace.to_stream_binary();

    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    // Correctness first, and warm-up for both paths.
    let out_text = feed_stream_text(&addr, &xi, &text).unwrap();
    let out_bin = feed_stream_binary(&addr, &xi, &bin).unwrap();
    assert_eq!(out_text.verdict.to_string(), out_bin.verdict.to_string());
    assert!(!out_bin.verdict.is_violation());
    assert_eq!(out_bin.acked_events, events, "acks must cover every event");
    assert!(
        out_bin.oks < out_text.oks,
        "binary acks must coalesce: {} progress replies vs {} in text",
        out_bin.oks,
        out_text.oks
    );

    if cfg!(debug_assertions) {
        // Unoptimized builds measure the compiler, not the protocol.
        handle.join();
        return;
    }

    let text_s = best_of(7, || {
        feed_stream_text(&addr, &xi, &text).unwrap();
    });
    let bin_s = best_of(7, || {
        feed_stream_binary(&addr, &xi, &bin).unwrap();
    });
    #[allow(clippy::cast_precision_loss)]
    let (text_eps, bin_eps) = (events as f64 / text_s, events as f64 / bin_s);
    let ratio = bin_eps / text_eps;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "single-session ingest: text {text_eps:.0} events/s, binary {bin_eps:.0} events/s \
         ({ratio:.2}x) on {cores} hardware threads"
    );

    let bar = if cores >= 4 { 3.0 } else { 2.0 };
    assert!(
        ratio >= bar,
        "binary framing only {ratio:.2}x over text (bar {bar}x on {cores} hardware threads): \
         text {text_eps:.0} events/s vs binary {bin_eps:.0} events/s"
    );
    handle.join();
}
