//! Failure detection in the ABC model (the paper's Fig. 3 mechanism and
//! the Section 6 Ω sketch).
//!
//! The ABC synchrony condition is used *indirectly* for failure detection:
//! a process `p` that broadcast a query at event `φ0` and has since driven
//! a ping-pong chain of `≥ 2Ξ` messages knows that a still-missing reply
//! can never arrive — its arrival would close a relevant cycle with
//! `|Z−|/|Z+| ≥ 2Ξ/2 = Ξ`, violating Definition 4. Hence:
//!
//! * **Strong accuracy** — no correct process is ever suspected (in an
//!   ABC-admissible execution the reply always arrives before the chain
//!   reaches `2Ξ`);
//! * **Completeness** — every crashed process is eventually suspected
//!   (chains keep growing as long as one correct partner responds).
//!
//! [`PingPongDetector`] implements the mechanism; [`leader_from_suspects`]
//! derives the Ω-style leader (Section 6: the ABC condition restricted to
//! an `f+2` core is enough to elect a leader among the core).
//!
//! The threshold is a genuine boundary: [`PingPongDetector::with_threshold`]
//! lets experiments run chains shorter than `2Ξ`, which produces false
//! suspicions exactly as the theory predicts (see the ablation test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abc_core::{ProcessId, Xi};
use abc_sim::{Context, Process};

/// Messages of the ping-pong failure detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdMsg {
    /// Probe query, stamped with the probe number.
    Query(u64),
    /// Reply to a probe.
    Reply(u64),
    /// Ping within a probe's chain: `(probe, hop)`.
    Ping(u64, u64),
    /// Pong answering a ping: `(probe, hop)`.
    Pong(u64, u64),
}

/// The Fig. 3 crash detector: queries everyone, then times the replies out
/// against its own ping-pong chain of `⌈2Ξ⌉` messages.
#[derive(Clone, Debug)]
pub struct PingPongDetector {
    n: usize,
    threshold: u64,
    probe: u64,
    hop: u64,
    replied: u128,
    suspected: u128,
    history: Vec<(u64, u128)>,
}

impl PingPongDetector {
    /// A detector using the sound chain threshold `⌈2Ξ⌉`.
    #[must_use]
    pub fn new(n: usize, xi: &Xi) -> PingPongDetector {
        PingPongDetector::with_threshold(n, xi.two_xi_ceil())
    }

    /// A detector with an explicit chain-length threshold (messages, not
    /// round trips). Thresholds below `2Ξ` are **unsound** and will
    /// falsely suspect slow-but-correct processes; the experiments use
    /// this to probe the boundary.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds 128 or `threshold` is zero.
    #[must_use]
    pub fn with_threshold(n: usize, threshold: u64) -> PingPongDetector {
        assert!(n <= 128 && threshold > 0);
        PingPongDetector {
            n,
            threshold,
            probe: 0,
            hop: 0,
            replied: 0,
            suspected: 0,
            history: Vec::new(),
        }
    }

    /// The processes currently suspected.
    pub fn suspected(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n)
            .filter(|p| self.suspected & (1 << p) != 0)
            .map(ProcessId)
    }

    /// Whether `p` is suspected.
    #[must_use]
    pub fn is_suspected(&self, p: ProcessId) -> bool {
        self.suspected & (1 << p.0) != 0
    }

    /// The current suspicion mask.
    #[must_use]
    pub fn suspected_mask(&self) -> u128 {
        self.suspected
    }

    /// `(probe, suspected_mask)` snapshots at each probe completion.
    #[must_use]
    pub fn history(&self) -> &[(u64, u128)] {
        &self.history
    }

    /// Number of completed probes.
    #[must_use]
    pub fn probes_completed(&self) -> u64 {
        self.probe
    }

    fn start_probe(&mut self, ctx: &mut Context<'_, FdMsg>) {
        self.replied = 1 << ctx.me().0;
        self.hop = 0;
        ctx.broadcast(FdMsg::Query(self.probe));
        // The chain pings go to everyone too: any responsive correct
        // process keeps the chain alive.
        ctx.broadcast(FdMsg::Ping(self.probe, 0));
    }

    fn finish_probe(&mut self, ctx: &mut Context<'_, FdMsg>) {
        // Chain reached the threshold: everyone who has not replied is
        // crashed (a later reply would close a cycle with ratio >= Xi).
        let all: u128 = (1 << self.n) - 1;
        self.suspected |= all & !self.replied;
        self.history.push((self.probe, self.suspected));
        self.probe += 1;
        self.start_probe(ctx);
    }
}

impl Process<FdMsg> for PingPongDetector {
    fn on_init(&mut self, ctx: &mut Context<'_, FdMsg>) {
        self.start_probe(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FdMsg>, from: ProcessId, msg: &FdMsg) {
        match *msg {
            FdMsg::Query(p) => ctx.send(from, FdMsg::Reply(p)),
            FdMsg::Ping(p, h) => ctx.send(from, FdMsg::Pong(p, h)),
            FdMsg::Reply(p) => {
                if p == self.probe {
                    self.replied |= 1 << from.0;
                }
            }
            FdMsg::Pong(p, h) => {
                if p == self.probe && h == self.hop {
                    // One round trip completed: the chain grew by 2 messages.
                    self.hop += 1;
                    if 2 * self.hop >= self.threshold {
                        self.finish_probe(ctx);
                    } else {
                        ctx.broadcast(FdMsg::Ping(self.probe, self.hop));
                    }
                }
            }
        }
    }
}

/// A plain responder: answers queries and pings, runs no detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct FdResponder;

impl Process<FdMsg> for FdResponder {
    fn on_init(&mut self, _ctx: &mut Context<'_, FdMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, FdMsg>, from: ProcessId, msg: &FdMsg) {
        match *msg {
            FdMsg::Query(p) => ctx.send(from, FdMsg::Reply(p)),
            FdMsg::Ping(p, h) => ctx.send(from, FdMsg::Pong(p, h)),
            _ => {}
        }
    }
}

/// Ω-style leader choice from a suspicion mask: the smallest-id process in
/// `core` that is not suspected (Section 6: restricting the ABC condition
/// to a core of `f+2` processes suffices for Ω among the core).
#[must_use]
pub fn leader_from_suspects(core: &[ProcessId], suspected_mask: u128) -> Option<ProcessId> {
    core.iter()
        .copied()
        .find(|p| suspected_mask & (1 << p.0) == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abc_sim::delay::BandDelay;
    use abc_sim::{CrashAt, Mute, RunLimits, Simulation};

    /// Band delays [lo, hi]: admissible for Xi > hi/lo.
    fn run_detector(
        n: usize,
        crashed: &[usize],
        threshold: u64,
        lo: u64,
        hi: u64,
        seed: u64,
    ) -> PingPongDetector {
        let mut sim = Simulation::new(BandDelay::new(lo, hi, seed));
        sim.add_process(PingPongDetector::with_threshold(n, threshold));
        for p in 1..n {
            if crashed.contains(&p) {
                sim.add_faulty_process(CrashAt::new(FdResponder, 0));
            } else {
                sim.add_process(FdResponder);
            }
        }
        sim.run(RunLimits {
            max_events: 30_000,
            max_time: u64::MAX,
        });
        sim.process_as::<PingPongDetector>(ProcessId(0))
            .unwrap()
            .clone()
    }

    #[test]
    fn detects_crashed_processes() {
        // Xi = 2 (delays [10, 19]): threshold 2*Xi = 4.
        let d = run_detector(4, &[2], 4, 10, 19, 1);
        assert!(d.is_suspected(ProcessId(2)), "crashed process detected");
        assert!(!d.is_suspected(ProcessId(1)));
        assert!(!d.is_suspected(ProcessId(3)));
        assert!(d.probes_completed() > 10);
    }

    #[test]
    fn strong_accuracy_at_sound_threshold() {
        // No crashes: nobody may ever be suspected, across seeds.
        for seed in 0..10 {
            let d = run_detector(4, &[], 4, 10, 19, seed);
            assert_eq!(d.suspected().count(), 0, "seed {seed}: {:?}", d.history());
        }
    }

    #[test]
    fn unsound_threshold_produces_false_suspicions() {
        // Threshold 2 (a single round trip) with delay spread close to 2:
        // a correct-but-slow reply loses the race eventually.
        let mut saw_false = false;
        for seed in 0..20 {
            let d = run_detector(4, &[], 2, 10, 19, seed);
            if d.suspected().count() > 0 {
                saw_false = true;
                break;
            }
        }
        assert!(
            saw_false,
            "threshold below 2Xi should eventually missuspect"
        );
    }

    #[test]
    fn mute_byzantine_is_suspected_like_a_crash() {
        let mut sim = Simulation::new(BandDelay::new(10, 19, 3));
        sim.add_process(PingPongDetector::with_threshold(4, 4));
        sim.add_process(FdResponder);
        sim.add_process(FdResponder);
        sim.add_faulty_process(Mute);
        sim.run(RunLimits {
            max_events: 20_000,
            max_time: u64::MAX,
        });
        let d = sim.process_as::<PingPongDetector>(ProcessId(0)).unwrap();
        assert!(d.is_suspected(ProcessId(3)));
    }

    #[test]
    fn omega_leader_is_least_unsuspected_core_member() {
        let core = [ProcessId(0), ProcessId(1), ProcessId(2)];
        assert_eq!(leader_from_suspects(&core, 0), Some(ProcessId(0)));
        assert_eq!(leader_from_suspects(&core, 0b001), Some(ProcessId(1)));
        assert_eq!(leader_from_suspects(&core, 0b011), Some(ProcessId(2)));
        assert_eq!(leader_from_suspects(&core, 0b111), None);
    }

    #[test]
    fn leader_stabilizes_on_live_detector() {
        let d = run_detector(4, &[1], 4, 10, 19, 7);
        let core: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let mask = d.history().last().unwrap().1;
        assert_eq!(leader_from_suspects(&core, mask), Some(ProcessId(0)));
        // Leadership is stable across the suspicion history tail.
        let tail: Vec<_> = d
            .history()
            .iter()
            .rev()
            .take(5)
            .map(|(_, m)| leader_from_suspects(&core, *m))
            .collect();
        assert!(tail.windows(2).all(|w| w[0] == w[1]));
    }
}
