//! Consensus on top of ABC lock-step rounds.
//!
//! The paper's Theorem 5 simulates lock-step rounds in the ABC model, so
//! "any Byzantine fault-tolerant synchronous consensus algorithm can be
//! used for solving consensus" (Section 6). This crate supplies the
//! synchronous algorithms and runs them through
//! [`abc_clocksync::LockStep`]:
//!
//! * [`EigConsensus`] — Exponential Information Gathering, `f+1` rounds,
//!   Byzantine resilience `n > 3f` (matching Algorithm 1's `n ≥ 3f+1`).
//! * [`FloodSet`] — crash-fault consensus by value flooding, `f+1` rounds.
//! * [`byzantine::EquivocatingLockStep`] — a transport-level Byzantine
//!   adversary that runs correct clock synchronization but sends
//!   *different* round payloads to different processes.
//!
//! The test suite validates **agreement**, **validity**, and
//! **termination** across adversaries, and shows resilience collapsing
//! when `f` exceeds the algorithm's budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
mod eig;
mod floodset;
pub mod harness;

pub use eig::EigConsensus;
pub use floodset::FloodSet;
