//! FloodSet consensus for crash faults.
//!
//! The textbook `f+1`-round algorithm: every round, broadcast the set of
//! values seen so far and merge what arrives. After `f+1` rounds all
//! correct processes hold the same set (some round is crash-free), so
//! deciding `min` yields agreement; validity holds because only inputs
//! circulate.

use std::collections::{BTreeMap, BTreeSet};

use abc_clocksync::RoundApp;
use abc_core::ProcessId;

/// FloodSet process state (wrap in [`abc_clocksync::LockStep`] to run).
#[derive(Clone, Debug)]
pub struct FloodSet {
    f: usize,
    seen: BTreeSet<u64>,
    decision: Option<u64>,
}

impl FloodSet {
    /// A process with the given input, tolerating `f` crash faults.
    #[must_use]
    pub fn new(f: usize, input: u64) -> FloodSet {
        FloodSet {
            f,
            seen: BTreeSet::from([input]),
            decision: None,
        }
    }

    /// The decided value, once round `f+1` has completed.
    #[must_use]
    pub fn decision(&self) -> Option<u64> {
        self.decision
    }
}

impl RoundApp for FloodSet {
    type Payload = Vec<u64>;

    fn first_message(&mut self, _me: ProcessId, _n: usize) -> Vec<u64> {
        self.seen.iter().copied().collect()
    }

    fn on_round(
        &mut self,
        _me: ProcessId,
        round: u64,
        received: &BTreeMap<ProcessId, Vec<u64>>,
    ) -> Vec<u64> {
        for values in received.values() {
            self.seen.extend(values.iter().copied());
        }
        if round == (self.f as u64) + 1 && self.decision.is_none() {
            self.decision = self.seen.iter().next().copied();
        }
        self.seen.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_and_decides_min() {
        let mut fs = FloodSet::new(1, 5);
        let mut r1 = BTreeMap::new();
        r1.insert(ProcessId(1), vec![3, 8]);
        r1.insert(ProcessId(2), vec![5]);
        assert_eq!(fs.on_round(ProcessId(0), 1, &r1), vec![3, 5, 8]);
        assert_eq!(fs.decision(), None, "decides only after f+1 rounds");
        let r2 = BTreeMap::new();
        fs.on_round(ProcessId(0), 2, &r2);
        assert_eq!(fs.decision(), Some(3));
    }
}
