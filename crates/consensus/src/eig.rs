//! Exponential Information Gathering (EIG) Byzantine consensus.
//!
//! The classic `f+1`-round synchronous algorithm for `n > 3f`: each
//! process maintains a tree of "who said that who said ... the value was
//! `v`" assertions, relayed one level per round; after `f+1` rounds the
//! tree is resolved bottom-up by recursive majority, which is identical at
//! all correct processes.

use std::collections::BTreeMap;

use abc_clocksync::RoundApp;
use abc_core::ProcessId;

/// One EIG assertion: the chain of relayers (most recent last) and the
/// value they vouch for.
pub type EigAssertion = (Vec<u8>, u64);

/// EIG consensus process state (wrap in [`abc_clocksync::LockStep`] to run).
#[derive(Clone, Debug)]
pub struct EigConsensus {
    n: usize,
    f: usize,
    input: u64,
    default: u64,
    /// Tree nodes: path (root = empty) -> reported value.
    tree: BTreeMap<Vec<u8>, u64>,
    decision: Option<u64>,
}

impl EigConsensus {
    /// A process with the given `input` in a system of `n` processes
    /// tolerating `f` Byzantine faults. Missing assertions resolve to the
    /// `default` value 0.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f` and `n ≤ 255` (paths store process ids as
    /// bytes).
    #[must_use]
    pub fn new(n: usize, f: usize, input: u64) -> EigConsensus {
        assert!(n > 3 * f, "EIG requires n > 3f");
        assert!(n <= 255, "paths store process ids as bytes");
        EigConsensus {
            n,
            f,
            input,
            default: 0,
            tree: BTreeMap::new(),
            decision: None,
        }
    }

    /// The decided value, once round `f+1` has completed.
    #[must_use]
    pub fn decision(&self) -> Option<u64> {
        self.decision
    }

    /// Recursive EIG resolution: leaves report their stored value; inner
    /// nodes take the majority of their children (default on tie/missing).
    fn resolve(&self, path: &[u8]) -> u64 {
        if path.len() == self.f + 1 {
            return self.tree.get(path).copied().unwrap_or(self.default);
        }
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        let mut children = 0;
        for q in 0..self.n {
            let q = u8::try_from(q).expect("n <= 255");
            if path.contains(&q) {
                continue;
            }
            let mut child = path.to_vec();
            child.push(q);
            // Children beyond the tree depth do not exist.
            if child.len() > self.f + 1 {
                continue;
            }
            let v = self.resolve(&child);
            *counts.entry(v).or_insert(0) += 1;
            children += 1;
        }
        if children == 0 {
            return self.tree.get(path).copied().unwrap_or(self.default);
        }
        // Strict majority of children, else default.
        counts
            .iter()
            .find(|(_, c)| 2 * **c > children)
            .map_or(self.default, |(v, _)| *v)
    }
}

impl RoundApp for EigConsensus {
    type Payload = Vec<EigAssertion>;

    fn first_message(&mut self, _me: ProcessId, _n: usize) -> Vec<EigAssertion> {
        // Round 0: broadcast my own value (the empty relay chain).
        vec![(Vec::new(), self.input)]
    }

    fn on_round(
        &mut self,
        _me: ProcessId,
        round: u64,
        received: &BTreeMap<ProcessId, Vec<EigAssertion>>,
    ) -> Vec<EigAssertion> {
        let level = usize::try_from(round).expect("rounds fit usize");
        if level <= self.f + 1 {
            // Store round-(r−1) assertions: (path, v) from sender s becomes
            // tree[path ++ s], for well-formed paths without repeats.
            for (sender, assertions) in received {
                let s = u8::try_from(sender.0).expect("n <= 255");
                for (path, v) in assertions {
                    if path.len() == level - 1 && !path.contains(&s) {
                        let mut full = path.clone();
                        full.push(s);
                        self.tree.entry(full).or_insert(*v);
                    }
                }
            }
        }
        if level == self.f + 1 && self.decision.is_none() {
            self.decision = Some(self.resolve(&[]));
        }
        // Round r message: all level-r nodes of my tree.
        self.tree
            .iter()
            .filter(|(path, _)| path.len() == level && level <= self.f)
            .map(|(path, v)| (path.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_unanimous_tree() {
        let mut e = EigConsensus::new(4, 1, 7);
        // All leaves say 7.
        for a in 0..4u8 {
            e.tree.insert(vec![a], 7);
            for b in 0..4u8 {
                if b != a {
                    e.tree.insert(vec![a, b], 7);
                }
            }
        }
        assert_eq!(e.resolve(&[]), 7);
    }

    #[test]
    fn resolve_outvotes_a_liar() {
        let mut e = EigConsensus::new(4, 1, 1);
        // Processes 0..2 say 1 consistently; process 3 lies with 9.
        for a in 0..4u8 {
            let val = if a == 3 { 9 } else { 1 };
            e.tree.insert(vec![a], val);
            for b in 0..4u8 {
                if b == a {
                    continue;
                }
                // b relays a's value honestly, except liar 3 relays garbage.
                let relayed = if b == 3 { 9 } else { val };
                e.tree.insert(vec![a, b], relayed);
            }
        }
        // Subtree of each correct a resolves to val (2-of-3 children
        // honest); root majority = 1 (three of four subtrees say 1).
        assert_eq!(e.resolve(&[]), 1);
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn rejects_insufficient_n() {
        let _ = EigConsensus::new(3, 1, 0);
    }
}
