//! Transport-level Byzantine adversaries for lock-step consensus.
//!
//! [`EquivocatingLockStep`] keeps the tick machinery of Algorithm 1
//! perfectly honest (so the round structure survives) but sends
//! *different* round payloads to different destinations — the strongest
//! payload-level attack EIG must survive. Tick-level misbehavior is
//! exercised separately in `abc-clocksync`'s adversaries; composing both
//! does not strengthen the adversary against EIG, whose resilience is
//! defined relative to delivered round messages.

use abc_clocksync::{TickCore, TickMsg};
use abc_core::ProcessId;
use abc_sim::{Context, Process};

/// Byzantine lock-step participant: correct ticks, equivocating payloads.
///
/// At every round boundary `r` it sends value `lie(destination, r)` to
/// each destination instead of an honest round message.
#[derive(Clone, Debug)]
pub struct EquivocatingLockStep {
    core: TickCore,
    phases_per_round: u64,
}

impl EquivocatingLockStep {
    /// A Byzantine participant for `n` processes (`f` fault budget; used
    /// only for the tick rules) and round length `⌈2Ξ⌉` phases.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 128` and `n ≥ 3f + 1`.
    #[must_use]
    pub fn new(n: usize, f: usize, xi: &abc_core::Xi) -> EquivocatingLockStep {
        EquivocatingLockStep {
            core: TickCore::new(n, f),
            phases_per_round: xi.two_xi_ceil().max(1),
        }
    }

    fn send_ticks<P: Clone + std::fmt::Debug + LieValue + 'static>(
        &mut self,
        ticks: Vec<u64>,
        ctx: &mut Context<'_, TickMsg<P>>,
    ) {
        let n = ctx.num_processes();
        for t in ticks {
            if t % self.phases_per_round == 0 {
                let r = t / self.phases_per_round;
                for dest in 0..n {
                    let payload = P::lie(dest, r);
                    ctx.send(
                        ProcessId(dest),
                        TickMsg {
                            k: t,
                            payload: Some(payload),
                        },
                    );
                }
            } else {
                ctx.broadcast(TickMsg {
                    k: t,
                    payload: None,
                });
            }
        }
    }
}

/// Payload types that can fabricate destination-dependent lies.
pub trait LieValue {
    /// A fabricated payload for the given destination and round.
    fn lie(destination: usize, round: u64) -> Self;
}

impl LieValue for Vec<u64> {
    fn lie(destination: usize, round: u64) -> Vec<u64> {
        vec![destination as u64 * 1_000 + round]
    }
}

impl LieValue for Vec<(Vec<u8>, u64)> {
    fn lie(destination: usize, round: u64) -> Vec<(Vec<u8>, u64)> {
        // Claim a different root value per destination, plus garbage relays.
        vec![(Vec::new(), destination as u64 % 2), (vec![0], round % 2)]
    }
}

impl<P: Clone + std::fmt::Debug + LieValue + 'static> Process<TickMsg<P>> for EquivocatingLockStep {
    fn on_init(&mut self, ctx: &mut Context<'_, TickMsg<P>>) {
        let ticks = self.core.on_init();
        self.send_ticks(ticks, ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TickMsg<P>>, from: ProcessId, msg: &TickMsg<P>) {
        let ticks = self.core.on_tick(from, msg.k);
        self.send_ticks(ticks, ctx);
    }
}
