//! End-to-end consensus runs over the lock-step simulation, with
//! agreement/validity/termination validation.

use abc_clocksync::LockStep;
use abc_core::{ProcessId, Xi};
use abc_sim::delay::BandDelay;
use abc_sim::{RunLimits, Simulation};

use crate::byzantine::EquivocatingLockStep;
use crate::{EigConsensus, FloodSet};

/// The outcome of a consensus run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusOutcome {
    /// Decisions of the correct processes, by process id.
    pub decisions: Vec<(ProcessId, Option<u64>)>,
    /// Inputs of the correct processes.
    pub inputs: Vec<(ProcessId, u64)>,
}

impl ConsensusOutcome {
    /// All correct processes decided (termination).
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.decisions.iter().all(|(_, d)| d.is_some())
    }

    /// All correct decisions are equal (agreement).
    #[must_use]
    pub fn agreement(&self) -> bool {
        let mut values = self.decisions.iter().filter_map(|(_, d)| *d);
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    /// If all correct inputs are equal, the decision equals that input
    /// (validity).
    #[must_use]
    pub fn validity(&self) -> bool {
        let mut inputs = self.inputs.iter().map(|(_, v)| *v);
        let Some(first) = inputs.next() else {
            return true;
        };
        if inputs.all(|v| v == first) {
            self.decisions
                .iter()
                .all(|(_, d)| *d == Some(first) || d.is_none())
        } else {
            true
        }
    }
}

/// Runs EIG consensus with `byz` equivocating Byzantine processes (ids at
/// the end) among `n` processes, `f` the algorithm's fault budget.
///
/// # Panics
///
/// Panics on invalid parameters (see [`EigConsensus::new`]).
#[must_use]
pub fn run_eig(
    n: usize,
    f: usize,
    byz: usize,
    inputs: &[u64],
    xi: &Xi,
    seed: u64,
    max_events: usize,
) -> ConsensusOutcome {
    assert_eq!(inputs.len(), n - byz, "one input per correct process");
    let mut sim = Simulation::new(BandDelay::new(50, 99, seed));
    for input in inputs {
        sim.add_process(LockStep::new(n, f, xi, EigConsensus::new(n, f, *input)));
    }
    for _ in 0..byz {
        sim.add_faulty_process(EquivocatingLockStep::new(n, f, xi));
    }
    sim.run(RunLimits {
        max_events,
        max_time: u64::MAX,
    });
    let mut decisions = Vec::new();
    let mut ins = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let p = ProcessId(i);
        let ls = sim
            .process_as::<LockStep<EigConsensus>>(p)
            .expect("correct processes are EIG lock-steps");
        decisions.push((p, ls.app().decision()));
        ins.push((p, *input));
    }
    ConsensusOutcome {
        decisions,
        inputs: ins,
    }
}

/// Runs FloodSet consensus with `crashed` processes crashing at their
/// `crash_step`-th step.
#[must_use]
pub fn run_floodset(
    n: usize,
    f: usize,
    crashed: &[(usize, usize)],
    inputs: &[u64],
    xi: &Xi,
    seed: u64,
    max_events: usize,
) -> ConsensusOutcome {
    assert_eq!(inputs.len(), n);
    let mut sim = Simulation::new(BandDelay::new(50, 99, seed));
    for (i, input) in inputs.iter().enumerate() {
        let app = LockStep::new(n, f, xi, FloodSet::new(f, *input));
        match crashed.iter().find(|(p, _)| *p == i) {
            Some((_, steps)) => {
                sim.add_faulty_process(abc_sim::CrashAt::new(app, *steps));
            }
            None => {
                sim.add_process(app);
            }
        }
    }
    sim.run(RunLimits {
        max_events,
        max_time: u64::MAX,
    });
    let mut decisions = Vec::new();
    let mut ins = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        if crashed.iter().any(|(p, _)| *p == i) {
            continue;
        }
        let p = ProcessId(i);
        let ls = sim
            .process_as::<LockStep<FloodSet>>(p)
            .expect("correct processes are FloodSet lock-steps");
        decisions.push((p, ls.app().decision()));
        ins.push((p, *input));
    }
    ConsensusOutcome {
        decisions,
        inputs: ins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eig_agreement_validity_termination_under_equivocation() {
        let xi = Xi::from_integer(2);
        for seed in 0..3 {
            let out = run_eig(4, 1, 1, &[1, 1, 1], &xi, seed, 60_000);
            assert!(out.terminated(), "seed {seed}: {out:?}");
            assert!(out.agreement(), "seed {seed}: {out:?}");
            assert!(out.validity(), "seed {seed}: {out:?}");
            // Unanimous correct inputs of 1 must decide 1 despite the liar.
            assert_eq!(out.decisions[0].1, Some(1), "seed {seed}");
        }
    }

    #[test]
    fn eig_mixed_inputs_still_agree() {
        let xi = Xi::from_integer(2);
        let out = run_eig(4, 1, 1, &[0, 1, 1], &xi, 9, 60_000);
        assert!(out.terminated() && out.agreement(), "{out:?}");
    }

    #[test]
    fn eig_seven_processes_two_byzantine() {
        let xi = Xi::from_integer(2);
        let out = run_eig(7, 2, 2, &[4, 4, 4, 4, 4], &xi, 5, 400_000);
        assert!(out.terminated(), "{out:?}");
        assert!(out.agreement() && out.validity(), "{out:?}");
        assert_eq!(out.decisions[0].1, Some(4));
    }

    #[test]
    fn floodset_survives_crashes() {
        let xi = Xi::from_integer(2);
        // p3 crashes mid-run (after 5 steps).
        let out = run_floodset(4, 1, &[(3, 5)], &[7, 3, 9, 1], &xi, 2, 60_000);
        assert!(out.terminated(), "{out:?}");
        assert!(out.agreement(), "{out:?}");
    }

    #[test]
    fn floodset_unanimous_validity() {
        let xi = Xi::from_integer(2);
        let out = run_floodset(4, 1, &[(0, 3)], &[6, 6, 6, 6], &xi, 4, 60_000);
        assert!(
            out.terminated() && out.agreement() && out.validity(),
            "{out:?}"
        );
        assert_eq!(out.decisions[0].1, Some(6));
    }
}
