//! The Fig. 3 ping-pong failure detector: crash detection from the ABC
//! condition, with the threshold boundary made visible.
//!
//! ```bash
//! cargo run --release --example failure_detector
//! ```

use abc::core::{ProcessId, Xi};
use abc::fd::{leader_from_suspects, FdResponder, PingPongDetector};
use abc::sim::delay::BandDelay;
use abc::sim::{CrashAt, RunLimits, Simulation};

fn run(threshold: u64, crash: Option<usize>, seed: u64) -> PingPongDetector {
    let mut sim = Simulation::new(BandDelay::new(10, 19, seed)); // Xi = 2
    sim.add_process(PingPongDetector::with_threshold(4, threshold));
    for p in 1..4 {
        if crash == Some(p) {
            sim.add_faulty_process(CrashAt::new(FdResponder, 0));
        } else {
            sim.add_process(FdResponder);
        }
    }
    sim.run(RunLimits {
        max_events: 20_000,
        max_time: u64::MAX,
    });
    sim.process_as::<PingPongDetector>(ProcessId(0))
        .unwrap()
        .clone()
}

fn main() {
    let xi = Xi::from_integer(2);
    let sound = xi.two_xi_ceil(); // chain threshold 2Xi = 4

    println!("sound threshold = 2Xi = {sound} chain messages");

    let d = run(sound, Some(2), 1);
    println!(
        "p2 crashed: suspected = {:?} after {} probes",
        d.suspected().collect::<Vec<_>>(),
        d.probes_completed()
    );
    assert!(d.is_suspected(ProcessId(2)));

    let d = run(sound, None, 1);
    println!(
        "all correct: suspected = {:?} (strong accuracy)",
        d.suspected().collect::<Vec<_>>()
    );
    assert_eq!(d.suspected().count(), 0);

    // Below the bound the detector is unsound — the paper's cycle argument
    // is exactly what breaks.
    let mut false_suspicions = 0;
    for seed in 0..12 {
        if run(2, None, seed).suspected().count() > 0 {
            false_suspicions += 1;
        }
    }
    println!("threshold 2 (< 2Xi): false suspicions in {false_suspicions}/12 seeds");

    // Omega: smallest unsuspected core member.
    let d = run(sound, Some(1), 3);
    let core: Vec<ProcessId> = (0..4).map(ProcessId).collect();
    println!(
        "omega leader with p1 crashed: {:?}",
        leader_from_suspects(&core, d.history().last().unwrap().1)
    );
}
