//! Byzantine consensus over simulated lock-step rounds (Theorem 5 put to
//! work): EIG with an equivocating adversary, and FloodSet with crashes.
//!
//! ```bash
//! cargo run --release --example consensus_lockstep
//! ```

use abc::consensus::harness;
use abc::core::Xi;

fn main() {
    let xi = Xi::from_integer(2);

    println!("EIG, n = 4, f = 1, one transport-level equivocator:");
    let out = harness::run_eig(4, 1, 1, &[1, 1, 1], &xi, 3, 60_000);
    for (p, d) in &out.decisions {
        println!("  {p} decided {d:?}");
    }
    assert!(out.terminated() && out.agreement() && out.validity());
    println!(
        "  agreement = {}, validity = {}",
        out.agreement(),
        out.validity()
    );

    println!("\nEIG, n = 7, f = 2, two equivocators, unanimous inputs 4:");
    let out7 = harness::run_eig(7, 2, 2, &[4, 4, 4, 4, 4], &xi, 5, 400_000);
    for (p, d) in &out7.decisions {
        println!("  {p} decided {d:?}");
    }
    assert!(out7.terminated() && out7.agreement() && out7.validity());

    println!("\nFloodSet, n = 4, f = 1, p3 crashes mid-round:");
    let fs = harness::run_floodset(4, 1, &[(3, 5)], &[7, 3, 9, 1], &xi, 2, 60_000);
    for (p, d) in &fs.decisions {
        println!("  {p} decided {d:?}");
    }
    assert!(fs.terminated() && fs.agreement());

    println!("\nconsensus achieved on top of the ABC lock-step simulation.");
}
