//! Section 5.3: fault-tolerant clock generation on a System-on-Chip, and
//! the FPGA -> ASIC technology migration that preserves the Xi margin.
//!
//! ```bash
//! cargo run --release --example vlsi_soc
//! ```

use abc::core::Xi;
use abc::vlsi::{SoC, ASIC, FPGA};

fn main() {
    let xi = Xi::from_integer(5);
    let fpga = SoC::new(2, 2, FPGA);
    println!(
        "2x2 SoC, FPGA profile: worst link ratio = {:.2}",
        fpga.worst_link_ratio().to_f64()
    );

    let run = fpga.run_clock_generation(&xi, 21, 1_500);
    println!(
        "  FPGA: min clock {}, spread {}, cycle ratio {:?}, Xi margin {:?}",
        run.min_clock,
        run.spread,
        run.max_cycle_ratio.as_ref().map(|r| r.to_f64()),
        run.xi_margin.as_ref().map(|r| r.to_f64()),
    );

    // Migrate the same netlist to a ~3.3x faster ASIC technology: both
    // minimum and maximum path delays scale together, so the algorithm's
    // Xi keeps holding (the paper's DARTS anecdote).
    let asic = fpga.migrate(ASIC);
    let run2 = asic.run_clock_generation(&xi, 21, 1_500);
    println!(
        "  ASIC: min clock {}, spread {}, cycle ratio {:?}, Xi margin {:?}",
        run2.min_clock,
        run2.spread,
        run2.max_cycle_ratio.as_ref().map(|r| r.to_f64()),
        run2.xi_margin.as_ref().map(|r| r.to_f64()),
    );

    let m1 = run.xi_margin.expect("cycles exist");
    let m2 = run2.xi_margin.expect("cycles exist");
    assert!(m1.to_f64() > 1.0 && m2.to_f64() > 1.0);
    println!("=> the same Xi = {xi} covers both technologies; no re-tuning needed.");
}
