//! Mapping the Ξ-violation frontier of growing delays (`abc-harness`).
//!
//! The spacecraft regime of §5.1/§5.3 has message delays that grow without
//! bound (`GrowingDelay`: band `[lo, hi]` scaled by `1 + t/tau`) yet stays
//! ABC-admissible for modest `Ξ`. But *which* `Ξ` suffices depends on the
//! growth timescale `tau`: fast growth (small `tau`) slows the whole
//! system uniformly and suppresses reordering, while slow growth leaves
//! the band's full reordering power intact. This example sweeps `tau` over
//! a grid for the clock-synchronization protocol at several candidate `Ξ`
//! values and prints the observed violation census plus, per `tau`, the
//! frontier: the smallest candidate `Ξ` with zero violations.
//!
//! Run with: `cargo run --release --example sweep_violation_map`

use abc::core::xi::Xi;
use abc::harness::spec::{DelaySweep, FaultPlan, Grid, Protocol, ScenarioSpec};
use abc::harness::sweep::{run_sweep, SweepOptions};
use abc::sim::RunLimits;

fn main() {
    let tau_grid = Grid::range(2, 26, 4); // 2, 6, 10, 14, 18, 22, 26
    let candidates: Vec<Xi> = [(2, 1), (5, 2), (3, 1), (4, 1), (5, 1)]
        .iter()
        .map(|(n, d)| Xi::from_fraction(*n, *d))
        .collect();
    let runs_per_point = 16usize;
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("Ξ-violation frontier: clocksync(n=4,f=1), growing[1,6] delays, tau swept");
    println!(
        "{} tau points x {} runs x {} candidate Ξ values, {} worker thread(s)\n",
        tau_grid.points().len(),
        runs_per_point,
        candidates.len(),
        threads
    );

    // One sweep per candidate Ξ; each sweep covers the whole tau grid.
    let mut census: Vec<Vec<usize>> = Vec::new(); // census[xi][tau_point]
    for xi in &candidates {
        let spec = ScenarioSpec {
            name: format!("frontier-xi-{xi}"),
            protocol: Protocol::ClockSync { n: 4, f: 1 },
            delay: DelaySweep::Growing {
                lo: Grid::fixed(1),
                hi: Grid::fixed(6),
                tau: tau_grid,
            },
            faults: FaultPlan::none(),
            limits: RunLimits {
                max_events: 250,
                max_time: u64::MAX,
            },
            xi: xi.clone(),
            runs_per_point,
            base_seed: 31,
            sim_workers: 1,
        };
        let report = run_sweep(
            &spec,
            SweepOptions {
                threads,
                keep_violating_traces: false,
            },
        )
        .expect("spec is valid");
        census.push(report.points.iter().map(|p| p.violations).collect());
    }

    // Census table: rows = tau, columns = candidate Ξ.
    print!("{:>8} |", "tau");
    for xi in &candidates {
        print!(" {:>9} |", format!("Ξ={xi}"));
    }
    println!(" frontier Ξ");
    println!("{}", "-".repeat(10 + 12 * candidates.len() + 11));
    for (ti, tau) in tau_grid.points().iter().enumerate() {
        print!("{tau:>8} |");
        for row in &census {
            let v = row[ti];
            print!(
                " {:>9} |",
                if v == 0 {
                    "ok".to_string()
                } else {
                    format!("{v}/{runs_per_point}")
                }
            );
        }
        let frontier = candidates
            .iter()
            .zip(&census)
            .find(|(_, row)| row[ti] == 0)
            .map_or("> 5".to_string(), |(xi, _)| xi.to_string());
        println!(" {frontier}");
    }

    println!(
        "\nReading: `a/b` = violating runs at that (tau, Ξ); the frontier column is the \
         smallest candidate Ξ admitting every sampled run. Fast growth (small tau) \
         uniformly slows the system and lowers the frontier; slow growth leaves the \
         band's reordering power intact."
    );
    // The frontier must be monotone-ish in the census: every violation at a
    // given Ξ also violates every smaller candidate (sanity, since larger
    // Ξ only relaxes the condition).
    for ti in 0..tau_grid.points().len() {
        for w in census.windows(2) {
            assert!(
                w[0][ti] >= w[1][ti],
                "census must shrink as Ξ grows (tau point {ti})"
            );
        }
    }
}
