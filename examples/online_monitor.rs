//! Online ABC monitoring: attach an incremental synchrony checker to a
//! live simulation and catch the first violating relevant cycle as it
//! closes — no per-step rebuild, no post-hoc batch pass.
//!
//! The workload is the paper's Fig. 3 scenario: a process ping-pongs with
//! a fast peer while a reply from a slow peer is outstanding. Every fast
//! round trip grows the backward side of the cycle the slow reply will
//! close; the moment it arrives, the monitor latches a witness.
//!
//! ```bash
//! cargo run --release --example online_monitor
//! ```

use abc::core::{check, ProcessId, Xi};
use abc::sim::delay::PerLinkBand;
use abc::sim::{Context, Process, RunLimits, Simulation};

/// p0 pings the slow peer (p1) and the fast peer (p2) at wake-up; everyone
/// echoes every message back to its sender until their budget runs out.
struct PingPong {
    budget: u32,
}

impl Process<u32> for PingPong {
    fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
        if ctx.me().0 == 0 {
            ctx.send(ProcessId(1), 0); // slow link: the spanning message
            ctx.send(ProcessId(2), 0); // fast link: the chain
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, m: &u32) {
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send(from, m + 1);
        }
    }
}

fn main() {
    // Fast links take 1 tick; the p0 <-> p1 round trip takes 100 each way.
    let mut delays = PerLinkBand::new(1, 1, 0);
    delays.set_link(ProcessId(0), ProcessId(1), 100, 100);
    delays.set_link(ProcessId(1), ProcessId(0), 100, 100);

    let xi = Xi::from_integer(3);
    let mut sim = Simulation::new(delays);
    for _ in 0..3 {
        sim.add_process(PingPong { budget: 30 });
    }
    sim.attach_monitor(&xi).expect("Xi fits the monitor");
    println!("monitoring a live Fig. 3 execution for Xi = {xi} ...");

    let stats = sim.run(RunLimits::default());
    let mon = sim.monitor().expect("attached before the run");
    println!(
        "ran {} events, {} messages sent (payload slab peak: {} slots)",
        stats.events_executed, stats.messages_sent, stats.payload_slab_peak
    );

    let witness = sim
        .violation()
        .expect("the slow reply spans the fast chain");
    let class = witness.classify();
    println!(
        "VIOLATION: relevant cycle with |Z-|/|Z+| = {}/{} >= {xi}",
        class.backward_messages, class.forward_messages
    );
    println!("witness: {witness}");

    // The streamed verdict is the batch verdict — on the same graph.
    let g = sim.trace().to_execution_graph();
    assert_eq!(mon.graph(), &g);
    assert!(!check::is_admissible(&g, &xi).unwrap());
    assert!(witness.validate(&g).is_ok());

    let m = mon.stats();
    println!(
        "monitor work: {} arcs, {} relaxations over {} events ({:.2} per event), {} batch confirmations",
        m.arcs,
        m.relaxations,
        m.events,
        m.relaxations as f64 / m.events as f64,
        m.full_checks
    );
    println!("online monitor and batch checker agree: execution violates Xi = {xi}");
}
