//! The paper's Section 5 separation scenarios: spacecraft clusters with
//! ever-growing delays (no classic model admits them; ABC does) and the
//! Fig. 10 FIFO guarantee that falls out of the ABC condition alone.
//!
//! ```bash
//! cargo run --example spacecraft_fifo
//! ```

use abc::core::{check, Xi};
use abc::models::{archimedean, far, parsync, scenarios};
use abc::rational::Ratio;

fn main() {
    // ---------------------------------------------------------------
    // Spacecraft formation: inter-cluster delays double every exchange.
    // ---------------------------------------------------------------
    let (g, timed) = scenarios::spacecraft_growing_delays(12);
    let ratio = check::max_relevant_cycle_ratio(&g).unwrap().unwrap();
    println!("spacecraft formation, 12 exchanges, delays 4, 8, ..., 16384:");
    println!("  max relevant cycle ratio = {ratio} (ABC-admissible for Xi = 2)");
    assert!(check::is_admissible(&g, &Xi::from_integer(2)).unwrap());

    let theta = timed.max_theta_ratio(&g).unwrap().unwrap();
    println!("  observed Theta diverges: {:.1}", theta.to_f64());
    let v = parsync::check_parsync(&g, &timed, &parsync::ParSyncParams { phi: 50, delta: 50 });
    println!("  ParSync(50, 50) admissible? {}", v.admissible);
    println!(
        "  Archimedean(s = 50) admissible? {}",
        archimedean::is_admissible(&g, &timed, &Ratio::from_integer(50))
    );
    let avgs = far::running_average_delays(&g, &timed);
    println!(
        "  FAR running average delay: mid = {:.1}, final = {:.1} (diverges)",
        avgs[avgs.len() / 2].to_f64(),
        avgs.last().unwrap().to_f64()
    );

    // ---------------------------------------------------------------
    // Fig. 10: FIFO for free.
    // ---------------------------------------------------------------
    let (in_order, reordered) = scenarios::fig10_fifo();
    println!("\nFig. 10 FIFO (Xi = 4):");
    println!(
        "  in-order delivery admissible?  {}",
        check::is_admissible(&in_order, &Xi::from_integer(4)).unwrap()
    );
    println!(
        "  reordered delivery admissible? {} (cycle ratio {})",
        check::is_admissible(&reordered, &Xi::from_integer(4)).unwrap(),
        check::max_relevant_cycle_ratio(&reordered)
            .unwrap()
            .unwrap()
    );
    println!("  => the ABC condition forbids reordering: FIFO without timestamps.");
}
