//! Quickstart: build an execution graph, check the ABC condition, construct
//! a Theorem 7 delay assignment, and run a small simulation.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use abc::clocksync::{instrument, TickGen};
use abc::core::assign::assign_delays;
use abc::core::graph::{ExecutionGraph, ProcessId};
use abc::core::{check, Xi};
use abc::sim::delay::BandDelay;
use abc::sim::{RunLimits, Simulation};

fn main() {
    // ---------------------------------------------------------------
    // 1. A hand-built space-time diagram: a fast 2-hop chain q -> r -> p
    //    spanned by one slow direct message q -> p (the minimal relevant
    //    cycle, Fig. 1 in miniature).
    // ---------------------------------------------------------------
    let mut b = ExecutionGraph::builder(3);
    let q = b.init(ProcessId(0));
    b.init(ProcessId(1));
    b.init(ProcessId(2));
    let (_, relay) = b.send(q, ProcessId(2));
    b.send(relay, ProcessId(1)); // fast chain arrives first at p
    b.send(q, ProcessId(1)); // slow message spans it
    let g = b.finish();

    let ratio = check::max_relevant_cycle_ratio(&g)
        .unwrap()
        .expect("one relevant cycle");
    println!("max relevant cycle ratio |Z-|/|Z+| = {ratio}");

    let xi_tight = Xi::from_integer(2);
    let xi_ok = Xi::from_fraction(5, 2);
    println!(
        "admissible for Xi = {xi_tight}? {}   (ratio == Xi violates the strict bound)",
        check::is_admissible(&g, &xi_tight).unwrap()
    );
    println!(
        "admissible for Xi = {xi_ok}? {}",
        check::is_admissible(&g, &xi_ok).unwrap()
    );

    // ---------------------------------------------------------------
    // 2. Theorem 7: a normalized delay assignment (all delays in (1, Xi))
    //    realizing exactly this causal structure.
    // ---------------------------------------------------------------
    let timed = assign_delays(&g, &xi_ok).expect("admissible => assignment exists");
    for m in g.messages() {
        println!(
            "  tau({}) = {}  ({} -> {})",
            m.id,
            timed.message_delay(&g, m.id),
            m.sender,
            m.receiver
        );
    }
    assert!(timed.is_normalized(&g, &xi_ok));

    // ---------------------------------------------------------------
    // 3. A real run: Byzantine clock synchronization (Algorithm 1) over an
    //    adversarial network, precision verified against Theorem 3.
    // ---------------------------------------------------------------
    let n = 4;
    let mut sim = Simulation::new(BandDelay::new(10, 19, 42)); // ratio < 2
    for _ in 0..n {
        sim.add_process(TickGen::new(n, 1));
    }
    let stats = sim.run(RunLimits {
        max_events: 4_000,
        max_time: u64::MAX,
    });
    let spread = instrument::max_clock_spread(sim.trace()).unwrap();
    let min_clock = instrument::min_final_clock(sim.trace()).unwrap();
    println!(
        "clock sync: {} events, min clock {}, max spread {} (bound 2Xi = {})",
        stats.events_executed,
        min_clock,
        spread,
        instrument::two_xi(&Xi::from_integer(2))
    );

    // The trace really is ABC-admissible — checked, not assumed.
    let trace_graph = sim.trace().to_execution_graph();
    assert!(check::is_admissible(&trace_graph, &Xi::from_fraction(21, 10)).unwrap());
    println!("trace admissibility verified with the polynomial checker.");
}
