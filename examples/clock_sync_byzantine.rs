//! Byzantine clock synchronization: n = 7, f = 2 rushing adversaries,
//! precision and bounded progress validated against Theorems 1-4.
//!
//! ```bash
//! cargo run --release --example clock_sync_byzantine
//! ```

use abc::clocksync::{byzantine::TickRusher, instrument, TickGen};
use abc::core::Xi;
use abc::sim::delay::BandDelay;
use abc::sim::{RunLimits, Simulation};

fn main() {
    let (n, f) = (7, 2);
    let xi = Xi::from_integer(2); // delays in [10, 19]: ratios < 2

    let mut sim = Simulation::new(BandDelay::new(10, 19, 7));
    for _ in 0..(n - f) {
        sim.add_process(TickGen::new(n, f));
    }
    // Two Byzantine processes rush their ticks to pull clocks ahead.
    sim.add_faulty_process(TickRusher::new(5));
    sim.add_faulty_process(TickRusher::new(11));
    sim.run(RunLimits {
        max_events: 500_000,
        max_time: 4_000,
    });
    let trace = sim.trace();

    println!(
        "Theorem 1 (progress): min final clock = {:?}",
        instrument::min_final_clock(trace)
    );

    let spread = instrument::max_clock_spread(trace).unwrap();
    println!(
        "Theorem 3 (precision): max |Cp(t) - Cq(t)| = {spread}, bound 2Xi = {}",
        instrument::two_xi(&xi)
    );
    assert!(
        abc::rational::Ratio::from_integer(spread as i64) <= instrument::two_xi(&xi),
        "precision bound violated"
    );

    let cut_spread = instrument::max_consistent_cut_spread(trace).unwrap();
    println!("Theorem 2 (consistent cuts): max frontier spread = {cut_spread}");

    let gap = instrument::bounded_progress_worst_gap(trace);
    println!(
        "Theorem 4 (bounded progress): worst gap = {gap}, rho = 4Xi+1 = {}",
        instrument::rho_bound(&xi)
    );
    assert!(instrument::bounded_progress_holds(trace, &xi));

    println!("all Section 3 bounds hold under Byzantine rushing.");
}
