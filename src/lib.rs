//! # abc — The Asynchronous Bounded-Cycle model, end to end
//!
//! Facade crate for the reproduction of *The Asynchronous Bounded-Cycle
//! model* (Robinson & Schmid, PODC/SSS 2008; TCS 412 (2011) 5580–5601).
//! It re-exports every sub-crate under one roof and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`core`] | Execution graphs, relevant cycles, the ABC condition (batch checker + incremental online monitor), cuts, cycle space, Theorem 7 delay assignments |
//! | [`rational`] | Exact big-integer / rational arithmetic |
//! | [`lp`] | Exact simplex + Farkas certificates, Fourier–Motzkin, difference constraints |
//! | [`sim`] | Deterministic message-driven simulator with fault injection and live ABC monitoring |
//! | [`models`] | Θ-Model, ParSync/DLS, Archimedean, FAR, MCM, MMR + separation scenarios |
//! | [`clocksync`] | Algorithm 1 (Byzantine clock sync) + Algorithm 2 (lock-step rounds) |
//! | [`fd`] | Fig. 3 ping-pong failure detection, Ω leader election |
//! | [`harness`] | Parallel scenario-sweep engine, trace text serialization consumers, the `abc` CLI |
//! | [`service`] | Sharded TCP trace-ingestion service with live ABC monitoring (`abc serve`/`feed`/`loadgen`) |
//! | [`consensus`] | EIG + FloodSet consensus over lock-step rounds |
//! | [`lint`] | Workspace static analysis (`abc lint`): panic-freedom, unsafe budget, lock order, atomics discipline, cast safety |
//! | [`obs`] | Flight recorder: per-thread span/counter rings, Chrome trace export, violation-forensics plumbing |
//! | [`variants`] | ?ABC, ◇ABC, ?◇ABC weaker variants (Section 6) |
//! | [`vlsi`] | Systems-on-Chip substrate (Section 5.3) |
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --example quickstart
//! ```

#![forbid(unsafe_code)]

pub use abc_clocksync as clocksync;
pub use abc_consensus as consensus;
pub use abc_core as core;
pub use abc_fd as fd;
pub use abc_harness as harness;
pub use abc_lint as lint;
pub use abc_lp as lp;
pub use abc_models as models;
pub use abc_obs as obs;
pub use abc_rational as rational;
pub use abc_service as service;
pub use abc_sim as sim;
pub use abc_variants as variants;
pub use abc_vlsi as vlsi;
